"""The lint runner: file collection, concurrency, baseline, rendering.

``run_lint`` is the one entry point behind both the ``repro lint`` CLI
command and the hygiene test. It fans the per-file checkers out over the
generic task engine of :mod:`repro.parallel` (process pool at
``jobs > 1``, the in-process executor otherwise — the same submission
surface either way), runs the project-scope checkers in the parent over
the shared parse cache, applies the committed baseline, and reports.

When the telemetry layer is enabled, per-checker latencies are recorded
as ``wallclock.staticcheck.<rule>_ns`` histograms (host time, hence the
``wallclock.`` prefix — see docs/OBSERVABILITY.md) plus
``staticcheck.files`` / ``staticcheck.findings`` counters.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..telemetry.metrics import TELEMETRY
from .baseline import Baseline, BaselineEntry, load_or_empty
from .cache import PARSE_CACHE, FileContext, normalize_path
from .finding import Finding
from .registry import (CheckerSpec, ProjectContext, all_checkers,
                       file_checkers, project_checkers)


@dataclasses.dataclass
class FileTaskResult:
    """Per-file lint output shipped back from a worker."""

    path: str
    findings: List[Finding]
    rule_ns: Dict[str, int]


@dataclasses.dataclass
class LintReport:
    """Outcome of one ``run_lint`` invocation."""

    findings: List[Finding]              #: unbaselined, sorted
    suppressed: List[Finding]            #: matched a baseline key
    #: Dead baseline entries: suppressions matching no current finding.
    #: Only populated by full (unfiltered) scans — a --select/--changed
    #: run sees too few findings to judge the baseline.
    stale_suppressions: List[BaselineEntry]
    files_scanned: int
    rule_ns: Dict[str, int]              #: cumulative host-ns per rule
    wall_time_s: float

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    @property
    def dead_baseline_entries(self) -> List[BaselineEntry]:
        return self.stale_suppressions

    def to_dict(self) -> Dict[str, object]:
        rules: Dict[str, str] = {}
        for spec in all_checkers():      # file-scope description wins
            rules.setdefault(spec.rule, spec.description)
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": len(self.suppressed),
            "stale_suppressions": [e.to_dict()
                                   for e in self.stale_suppressions],
            "rules": rules,
            "wall_time_s": round(self.wall_time_s, 4),
        }


def collect_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: List[str] = []
    for raw in paths:
        if os.path.isdir(raw):
            for dirpath, dirnames, filenames in os.walk(raw):
                dirnames.sort()
                files.extend(os.path.join(dirpath, name)
                             for name in sorted(filenames)
                             if name.endswith(".py"))
        else:
            files.append(raw)
    return sorted(dict.fromkeys(files))


def rule_allowed(rule: str, select: Sequence[str] = (),
                 ignore: Sequence[str] = ()) -> bool:
    if select and rule not in select:
        return False
    return rule not in ignore


def filter_checkers(specs: Sequence[CheckerSpec],
                    select: Sequence[str] = (),
                    ignore: Sequence[str] = ()) -> List[CheckerSpec]:
    """Apply ``--select``/``--ignore`` rule-id filtering."""
    return [spec for spec in specs
            if rule_allowed(spec.rule, select, ignore)]


def lint_file(context: FileContext,
              checkers: Optional[Sequence[CheckerSpec]] = None,
              select: Sequence[str] = (),
              ignore: Sequence[str] = ()) -> FileTaskResult:
    """Run every applicable file-scope checker over one parsed file."""
    findings: List[Finding] = []
    rule_ns: Dict[str, int] = {}
    if context.parse_error is not None and \
            rule_allowed(context.parse_error.rule, select, ignore):
        findings.append(context.parse_error)
    specs = file_checkers() if checkers is None else checkers
    for spec in filter_checkers(specs, select, ignore):
        if not spec.applies_to(context.module):
            continue
        started = time.perf_counter_ns()
        findings.extend(spec.fn(context))
        rule_ns[spec.rule] = rule_ns.get(spec.rule, 0) + \
            (time.perf_counter_ns() - started)
    return FileTaskResult(path=context.path, findings=findings,
                          rule_ns=rule_ns)


def _lint_file_task(path: str, select: Tuple[str, ...] = (),
                    ignore: Tuple[str, ...] = ()) -> FileTaskResult:
    """Module-level worker entry (picklable for the process pool)."""
    return lint_file(PARSE_CACHE.get(path), select=select, ignore=ignore)


def changed_files(base: str = "main") -> Optional[Set[str]]:
    """Normalized paths differing from ``git merge-base HEAD <base>``.

    Includes uncommitted modifications and untracked files. Returns
    ``None`` when git is unavailable or the ref does not resolve, in
    which case ``--changed`` falls open to a full lint.
    """

    def git(*args: str) -> str:
        proc = subprocess.run(["git", *args], capture_output=True,
                              text=True, check=True)
        return proc.stdout

    try:
        merge_base = git("merge-base", "HEAD", base).strip()
        listed = git("diff", "--name-only", merge_base).splitlines()
        listed += git("ls-files", "--others",
                      "--exclude-standard").splitlines()
    except (OSError, subprocess.CalledProcessError):
        return None
    return {normalize_path(path) for path in listed if path.strip()}


def run_lint(paths: Sequence[str], jobs: int = 1,
             baseline: Optional[Baseline] = None,
             baseline_path: Optional[str] = None,
             select: Sequence[str] = (),
             ignore: Sequence[str] = (),
             changed_base: Optional[str] = None) -> LintReport:
    """Lint ``paths``; see the module docstring for the pipeline."""
    from ..parallel.sweep import run_tasks  # deferred: parallel is heavier
    started = time.perf_counter()
    select = tuple(select)
    ignore = tuple(ignore)
    files = collect_files(paths)
    changed: Optional[Set[str]] = None
    if changed_base is not None:
        changed = changed_files(changed_base)
        if changed is not None:
            files = [path for path in files
                     if normalize_path(path) in changed]
    if baseline is None:
        baseline = (load_or_empty(baseline_path)
                    if baseline_path else Baseline())

    tasks = [(path, _lint_file_task, (path, select, ignore))
             for path in files]
    results = run_tasks(tasks, max_workers=max(1, jobs))

    findings: List[Finding] = []
    rule_ns: Dict[str, int] = {}
    for result in results:
        if result.error is not None:
            findings.append(Finding(
                rule="SC000", path=result.label.replace(os.sep, "/"),
                line=0,
                message=f"lint task failed: {result.error.error_type}: "
                        f"{result.error.message}"))
            continue
        value: FileTaskResult = result.value
        findings.extend(value.findings)
        for rule, ns in value.rule_ns.items():
            rule_ns[rule] = rule_ns.get(rule, 0) + ns

    contexts = [PARSE_CACHE.get(path) for path in files]
    project_ctx = ProjectContext(files=contexts)
    for spec in filter_checkers(project_checkers(), select, ignore):
        stage_start = time.perf_counter_ns()
        findings.extend(spec.fn(project_ctx))
        rule_ns[spec.rule] = rule_ns.get(spec.rule, 0) + \
            (time.perf_counter_ns() - stage_start)

    kept, suppressed, stale = baseline.apply(findings)
    kept.sort(key=Finding.sort_key)
    # A filtered or changed-only run cannot tell a dead baseline entry
    # from one whose finding was simply not recomputed.
    if select or ignore or changed is not None:
        stale = []
    report = LintReport(findings=kept, suppressed=suppressed,
                        stale_suppressions=stale,
                        files_scanned=len(files), rule_ns=rule_ns,
                        wall_time_s=time.perf_counter() - started)
    if TELEMETRY.enabled:
        TELEMETRY.count("staticcheck.files", len(files))
        TELEMETRY.count("staticcheck.findings", len(kept))
        TELEMETRY.count("staticcheck.suppressed", len(suppressed))
        for rule, ns in sorted(rule_ns.items()):
            TELEMETRY.observe(f"wallclock.staticcheck.{rule}_ns", ns)
    return report


def render_human(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    for entry in report.stale_suppressions:
        lines.append(f"dead baseline entry {entry.key} ({entry.rule} "
                     f"{entry.path}: {entry.line_text!r}) — violation "
                     f"fixed? prune it with --write-baseline")
    summary = (f"{report.files_scanned} file(s) scanned, "
               f"{len(report.findings)} finding(s), "
               f"{len(report.suppressed)} baselined")
    if report.stale_suppressions:
        summary += (f", {len(report.stale_suppressions)} dead baseline "
                    f"entr{'y' if len(report.stale_suppressions) == 1 else 'ies'}")
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def write_baseline(report_findings: Sequence[Finding], path: str,
                   suppressed: Sequence[Finding] = (),
                   reason: str = "") -> Baseline:
    """Mint a baseline covering current findings (new + still-suppressed)."""
    baseline = Baseline.from_findings(
        list(report_findings) + list(suppressed), reason=reason)
    baseline.save(path)
    return baseline
