"""The :class:`Finding` model — one diagnostic from one checker.

A finding is a plain, picklable value: rule id (``SC001`` …), severity,
``path:line`` location, human message, and the *stripped source line* it
anchors to. The line text is what makes suppression keys robust: a
baseline entry keys on ``(rule, path, line text, occurrence)`` rather
than the line *number*, so unrelated edits that shift code up or down do
not invalidate suppressions, while editing the offending line itself
does (see :mod:`repro.staticcheck.baseline`).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List

#: Severity levels, most severe first (sort order for reports).
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
_SEVERITY_RANK = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 1}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic."""

    rule: str           #: rule id, e.g. ``"SC001"``
    path: str           #: posix-style path, relative to the lint root/cwd
    line: int           #: 1-based line number (0 = whole file)
    message: str        #: human-readable explanation
    severity: str = SEVERITY_ERROR
    line_text: str = ""  #: stripped source of ``line`` (suppression anchor)

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        """The canonical one-line human rendering."""
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}] " \
               f"{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "severity": self.severity, "message": self.message,
                "line_text": self.line_text}

    def sort_key(self):
        return (self.path, self.line,
                _SEVERITY_RANK.get(self.severity, 9), self.rule,
                self.message)


def suppression_key(rule: str, path: str, line_text: str,
                    occurrence: int) -> str:
    """Stable 16-hex-digit key for one baselined finding.

    ``occurrence`` disambiguates identical lines in the same file (the
    n-th ``start = time.perf_counter()`` keeps its own key).
    """
    payload = "|".join((rule, path, line_text.strip(), str(occurrence)))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def keyed_findings(findings: Iterable[Finding]) -> List[tuple]:
    """Pair each finding with its suppression key.

    Occurrence indices are assigned per ``(rule, path, line_text)`` group
    in ``(path, line)`` order, so keys are independent of checker
    execution order.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    seen: Dict[tuple, int] = {}
    out = []
    for finding in ordered:
        group = (finding.rule, finding.path, finding.line_text.strip())
        occurrence = seen.get(group, 0)
        seen[group] = occurrence + 1
        out.append((finding, suppression_key(finding.rule, finding.path,
                                             finding.line_text, occurrence)))
    return out
