"""SC004 — the 29-API hook contract (paper Section III-A conformance).

The deception is only as complete as its hook coverage: HookChain-style
bypasses live exactly where a "hooked" name fails to resolve to a real
prologue-bearing export, or where a contract API silently has no
handler. This checker cross-checks, against the live ``repro.winapi``
export table:

* every name Scarecrow hooks — ``CORE_29_APIS``, the W-variant aliases
  (both sides), the decoys, and every key ``build_handlers()`` actually
  registers — resolves to a registered winapi export;
* each such export carries the standard hotpatch prologue and accepts a
  JMP patch that round-trips (install → detectably hooked → restore);
* every one of the 29 contract APIs has a registered handler.

The core logic is pure (:func:`contract_findings`) so tests can feed it
deliberately broken inputs; the registered checker gathers the real
values by importing the live modules, and only fires when the scan
includes ``repro.core.handlers`` (linting an unrelated tree does not
drag the whole system in).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional

from .cache import FileContext
from .finding import Finding
from .registry import ProjectContext, project_checker

#: Module whose presence in the scan set arms this checker.
ANCHOR_MODULE = "repro.core.handlers"


def _anchor_line(ctx: FileContext, name: str) -> int:
    """Line of the first quoted occurrence of ``name`` (1 when absent)."""
    needle = f'"{name}"'
    for index, line in enumerate(ctx.lines, start=1):
        if needle in line:
            return index
    return 1


def default_prologue_ok(export: str) -> bool:
    """Standard-prologue + patch round-trip proof on a fresh code image."""
    from ..hooking.prologue import (PATCH_LEN, STANDARD_PROLOGUE, CodeImage)
    image = CodeImage()
    if image.read(export) != STANDARD_PROLOGUE:
        return False
    saved = image.patch_jmp(export, 0x10000000)
    if not image.is_patched(export):
        return False
    image.unpatch(export, saved)
    return image.read(export, PATCH_LEN) == STANDARD_PROLOGUE[:PATCH_LEN]


def contract_findings(ctx: FileContext,
                      core_apis: Iterable[str],
                      aliases: Mapping[str, str],
                      decoys: Iterable[str],
                      handler_names: Iterable[str],
                      exports: Iterable[str],
                      prologue_ok: Callable[[str], bool]
                      ) -> List[Finding]:
    """Pure cross-check of the hook contract; see the module docstring."""
    findings: List[Finding] = []
    export_index = {name.lower(): name for name in exports}
    handler_set = set(handler_names)
    core = list(core_apis)

    def resolves(name: str) -> bool:
        return name.lower() in export_index

    checked: Dict[str, str] = {}
    for name in core:
        checked.setdefault(name, "contract API")
    for alias, base in aliases.items():
        checked.setdefault(alias, "W-variant alias")
        checked.setdefault(base, "W-variant base")
    for name in decoys:
        checked.setdefault(name, "decoy hook")
    for name in handler_names:
        checked.setdefault(name, "registered handler")

    for name in sorted(checked):
        role = checked[name]
        if not resolves(name):
            findings.append(ctx.finding(
                "SC004", _anchor_line(ctx, name),
                f"{role} {name} does not resolve to a registered winapi "
                f"export (hooking it would be a silent no-op)"))
        elif not prologue_ok(name):
            findings.append(ctx.finding(
                "SC004", _anchor_line(ctx, name),
                f"{role} {name} does not carry a standard hotpatch "
                f"prologue / JMP patch round-trip failed"))

    if len(core) != 29:
        findings.append(ctx.finding(
            "SC004", _anchor_line(ctx, core[0]) if core else 1,
            f"CORE_29_APIS lists {len(core)} APIs; the paper's Section "
            f"III-A contract is exactly 29"))
    for name in core:
        if name not in handler_set:
            findings.append(ctx.finding(
                "SC004", _anchor_line(ctx, name),
                f"contract API {name} has no handler registered by "
                f"build_handlers() (deception coverage gap)"))

    for alias, base in sorted(aliases.items()):
        if base not in handler_set:
            findings.append(ctx.finding(
                "SC004", _anchor_line(ctx, alias),
                f"W-variant alias {alias} maps to {base}, which has no "
                f"registered handler"))
    return findings


def live_contract_inputs():
    """The real (core, aliases, decoys, handlers, exports) quintuple."""
    from .. import winapi  # ensures every export is registered
    from ..core.engine import DeceptionEngine
    from ..core.handlers import (CORE_29_APIS, DECOY_APIS,
                                 W_VARIANT_ALIASES, build_handlers)
    handlers = build_handlers(DeceptionEngine())
    return (CORE_29_APIS, W_VARIANT_ALIASES, DECOY_APIS,
            sorted(handlers), sorted(winapi.EXPORTS))


@project_checker("SC004", "api-contract",
                 "every hooked name must resolve to a real prologue-"
                 "bearing winapi export and all 29 contract APIs must "
                 "have handlers")
def check_api_contract(ctx: ProjectContext) -> List[Finding]:
    anchor = ctx.find(ANCHOR_MODULE)
    if anchor is None:
        return []
    core, aliases, decoys, handler_names, exports = live_contract_inputs()
    return contract_findings(anchor, core, aliases, decoys, handler_names,
                             exports, default_prologue_ok)
