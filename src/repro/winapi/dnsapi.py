"""dnsapi.dll — resolver cache table plus DNS queries."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .calling import ApiContext, winapi

DLL = "dnsapi.dll"


@winapi(DLL)
def DnsGetCacheDataTable(ctx: ApiContext) -> List[Tuple[str, int]]:
    """``(name, type)`` rows of the resolver cache.

    The #1 wear-and-tear artifact: an aged end-user machine returns a long
    table, a pristine sandbox almost nothing. Scarecrow's wear-and-tear
    handler truncates this to 4 recent entries.
    """
    return [(entry.name, entry.record_type)
            for entry in ctx.machine.dnscache.entries()]


@winapi(DLL)
def DnsQuery_A(ctx: ApiContext, name: str) -> Optional[str]:
    """Resolve ``name``; ``None`` models NXDOMAIN."""
    ip = ctx.machine.network.resolve(name)
    ctx.emit("net", "DnsQuery", domain=name, answer=ip)
    if ip is not None:
        ctx.machine.dnscache.add(name)
    return ip


@winapi(DLL)
def DnsFlushResolverCache(ctx: ApiContext) -> bool:
    ctx.machine.dnscache.flush()
    return True
