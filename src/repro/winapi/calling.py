"""API dispatch: the bridge between simulated programs and the machine.

Simulated programs (malware samples, benign software, Pafish) never touch
:mod:`repro.winsim` directly for anything an API mediates. They hold an
:class:`ApiContext` — "this process calling Win32 on this machine" — and
go through :meth:`ApiContext.call`, which:

1. charges the virtual clock for the call,
2. publishes an ``api`` kernel event (the Fibratus tap),
3. routes through the process's inline-hook manager if the export is
   hooked (this is where Scarecrow lives),
4. otherwise invokes the genuine implementation against machine state.

Memory reads that bypass the API — direct PEB access, reading a function's
own prologue bytes — are exposed as explicit ``read_*`` methods so that the
paper's hook-bypassing behaviours stay visible in call sites.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any, Callable, Dict, List, Optional

from ..hooking.injection import hook_manager_of
from ..hooking.prologue import STANDARD_PROLOGUE
from ..telemetry.metrics import TELEMETRY
from ..winsim.machine import Machine
from ..winsim.process import Process
from ..winsim.types import Peb

#: Nanoseconds charged per API call (native-ish transition cost).
API_CALL_COST_NS = 400

ApiImpl = Callable[..., Any]

#: Global export table: "kernel32.dll!IsDebuggerPresent" -> implementation.
EXPORTS: Dict[str, ApiImpl] = {}
#: Case-insensitive index into :data:`EXPORTS` plus a bare-name index so
#: ``api.IsDebuggerPresent(...)`` sugar resolves without scanning.
_EXPORT_INDEX: Dict[str, str] = {}
_BARE_NAME_INDEX: Dict[str, str] = {}


def export_name(dll: str, function: str) -> str:
    return f"{dll.lower()}!{function}"


def winapi(dll: str, name: Optional[str] = None) -> Callable[[ApiImpl], ApiImpl]:
    """Register an implementation in the global export table."""

    def decorator(impl: ApiImpl) -> ApiImpl:
        func_name = name or impl.__name__
        key = export_name(dll, func_name)
        if key.lower() in _EXPORT_INDEX:
            raise ValueError(f"duplicate export {dll}!{func_name}")
        EXPORTS[key] = impl
        _EXPORT_INDEX[key.lower()] = key
        _BARE_NAME_INDEX.setdefault(func_name, key)
        return impl

    return decorator


def _resolve_export(name_lower: str) -> Optional[str]:
    return _EXPORT_INDEX.get(name_lower)


@dataclasses.dataclass
class CallRecord:
    """One recorded API call (kept by the context for tests/inspection)."""

    export: str
    args: tuple
    result: Any


class ApiContext:
    """One process's view of the Win32 API on one machine."""

    def __init__(self, machine: Machine, process: Process) -> None:
        self.machine = machine
        self.process = process
        self.last_error = 0
        self.call_log: List[CallRecord] = []
        #: When True, suppress per-call kernel events (used by tight
        #: benchmark loops to keep the bus quiet).
        self.quiet = False

    # -- dispatch ------------------------------------------------------------

    def call(self, export: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``export`` ("dll!Function") as this process."""
        key = _resolve_export(export.lower())
        if key is None:
            raise KeyError(f"unknown API export: {export}")
        implementation = EXPORTS[key]
        if not self.process.alive:
            raise RuntimeError(
                f"terminated process pid={self.process.pid} cannot call APIs")
        # Latency is charged in virtual-clock ns so the recorded histograms
        # are deterministic (identical across serial and pooled sweeps).
        telemetry_on = TELEMETRY.enabled
        if telemetry_on:
            entered_ns = self.machine.clock.now_ns
        self.machine.clock.advance_ns(API_CALL_COST_NS)
        if not self.quiet:
            self.machine.bus.emit(
                "api", key, self.process.pid, self.machine.clock.now_ns,
                args=_summarize_args(args))
        manager = hook_manager_of(self.process)
        if manager is not None:
            result = manager.dispatch(key, self, implementation, args, kwargs)
        else:
            result = implementation(self, *args, **kwargs)
        self.call_log.append(CallRecord(key, args, result))
        if telemetry_on:
            TELEMETRY.count("api.calls")
            TELEMETRY.observe("api.latency_ns." + key,
                              self.machine.clock.now_ns - entered_ns)
        return result

    def __getattr__(self, item: str) -> Any:
        """Allow ``api.IsDebuggerPresent()`` sugar for any known export."""
        if item.startswith("_"):
            raise AttributeError(item)
        key = _BARE_NAME_INDEX.get(item)
        if key is not None:
            return functools.partial(self.call, key)
        raise AttributeError(f"no API export named {item}")

    # -- hook-bypassing memory reads (explicit, per the paper) ------------------

    def read_peb(self) -> Peb:
        """Direct PEB read — not interceptable by user-mode hooks.

        This is the exact path that let sample ``cbdda64`` defeat Scarecrow
        (it read ``NumberOfProcessors`` from the PEB instead of calling an
        API).
        """
        return self.process.peb

    def read_function_prologue(self, export: str, length: int = 5) -> bytes:
        """Read an export's first code bytes — the anti-hook primitive."""
        manager = hook_manager_of(self.process)
        if manager is None:
            return bytes(STANDARD_PROLOGUE[:length])
        return manager.read_prologue(export, length)

    # -- instruction-level primitives (not exports, not hookable) -----------

    def cpuid(self, leaf: int) -> Dict[str, int]:
        self.machine.clock.cpuid_cost()
        if self.machine.hardware.cpu.cpuid_traps:
            # VM exit: world switch into the hypervisor and back.
            self.machine.clock.advance_ns(15_000)
        return self.machine.hardware.cpu.cpuid(leaf)

    def rdtsc(self) -> int:
        return self.machine.clock.rdtsc()

    # -- event emission used by API implementations --------------------------

    def emit(self, category: str, name: str, /, **details: Any) -> None:
        """Publish a kernel event attributed to this process."""
        self.machine.bus.emit(category, name, self.process.pid,
                              self.machine.clock.now_ns, **details)

    # -- error code plumbing -----------------------------------------------------

    def set_last_error(self, code: int) -> None:
        self.last_error = int(code)

    def get_last_error(self) -> int:
        return self.last_error


def _summarize_args(args: tuple) -> tuple:
    """Keep traced args small and hashable-ish."""
    summary = []
    for arg in args[:4]:
        if isinstance(arg, (str, int, bool, type(None))):
            summary.append(arg if not isinstance(arg, str) else arg[:120])
        elif isinstance(arg, bytes):
            summary.append(f"<{len(arg)} bytes>")
        else:
            summary.append(type(arg).__name__)
    return tuple(summary)


def bind(machine: Machine, process: Process) -> ApiContext:
    """Convenience constructor used all over the higher layers."""
    return ApiContext(machine, process)
