"""iphlpapi.dll + mpr.dll — adapters (MAC OUI checks) and net providers."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .calling import ApiContext, winapi


@winapi("iphlpapi.dll")
def GetAdaptersInfo(ctx: ApiContext) -> List[Tuple[str, str, str]]:
    """``(name, mac, description)`` per adapter — feeds the MAC OUI probes."""
    return [(a.name, a.mac, a.description)
            for a in ctx.machine.network.adapters()]


@winapi("mpr.dll")
def WNetGetProviderNameA(ctx: ApiContext, net_type: int) -> Optional[str]:
    """Network-provider lookup; VirtualBox Shared Folders registers one.

    We model it as: the provider exists iff the ``VBoxSF`` service is
    installed (which is how the provider gets there in reality).
    """
    if ctx.machine.services.exists("VBoxSF"):
        return "VirtualBox Shared Folders"
    return None
