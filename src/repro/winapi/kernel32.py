"""kernel32.dll — process, module, timing, memory, disk and file APIs.

Every function takes the calling :class:`~repro.winapi.calling.ApiContext`
first; programs invoke them as ``api.call("kernel32.dll!Name", ...)`` or via
the ``api.Name(...)`` sugar. Out-parameters become Pythonic return values
(tuples where the real API fills multiple buffers).
"""

from __future__ import annotations

import zlib
from typing import Optional, Tuple

from ..winsim.errors import Win32Error
from ..winsim.types import (INVALID_HANDLE_VALUE, Handle, MemoryStatusEx,
                            OsVersionInfo, SystemInfo)
from .calling import ApiContext, winapi

DLL = "kernel32.dll"

#: ``GetFileAttributes`` failure sentinel.
INVALID_FILE_ATTRIBUTES = 0xFFFFFFFF

#: ``CreateProcess`` creation flag.
CREATE_SUSPENDED = 0x00000004

#: ``DeviceIoControl`` code for drive geometry.
IOCTL_DISK_GET_DRIVE_GEOMETRY = 0x00070000


# ---------------------------------------------------------------------------
# Debugger presence
# ---------------------------------------------------------------------------

@winapi(DLL)
def IsDebuggerPresent(ctx: ApiContext) -> bool:
    """Read ``PEB.BeingDebugged`` of the calling process (via the API)."""
    return bool(ctx.process.peb.being_debugged)


@winapi(DLL)
def CheckRemoteDebuggerPresent(ctx: ApiContext, pid: Optional[int] = None) -> bool:
    target = ctx.process if pid is None else ctx.machine.processes.get(pid)
    if target is None:
        ctx.set_last_error(Win32Error.ERROR_INVALID_PARAMETER)
        return False
    return bool(target.peb.being_debugged)


@winapi(DLL)
def OutputDebugStringA(ctx: ApiContext, text: str) -> None:
    """No-op sink; sets last-error the way the classic anti-debug trick probes."""
    if not ctx.process.peb.being_debugged:
        ctx.set_last_error(Win32Error.ERROR_INVALID_HANDLE)


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------

@winapi(DLL)
def GetTickCount(ctx: ApiContext) -> int:
    return ctx.machine.clock.tick_count_ms()


@winapi(DLL)
def Sleep(ctx: ApiContext, milliseconds: int) -> None:
    ctx.machine.clock.sleep(float(milliseconds))


@winapi(DLL)
def QueryPerformanceCounter(ctx: ApiContext) -> int:
    return ctx.machine.clock.now_ns // 100


@winapi(DLL)
def RaiseException(ctx: ApiContext, code: int = 0xE06D7363) -> None:
    """Dispatch a (handled) user-mode exception.

    The only observable is *time*: a debugger's first-chance interposition
    makes the dispatch dramatically slower, which Section II-B(g)'s
    exception-timing probes measure via tick deltas around this call.
    """
    profile = ctx.machine.clock.profile
    cost = (profile.debugged_exception_dispatch_ns
            if ctx.process.peb.being_debugged
            else profile.exception_dispatch_ns)
    ctx.machine.clock.advance_ns(cost)
    ctx.emit("exception", "RaiseException", code=code)


# ---------------------------------------------------------------------------
# Modules
# ---------------------------------------------------------------------------

@winapi(DLL)
def GetModuleHandleA(ctx: ApiContext, name: Optional[str]) -> Optional[int]:
    """Return the module base or ``None`` (NULL) when not loaded."""
    if name is None:
        return ctx.process.modules.executable.base_address
    module = ctx.process.modules.find(name)
    if module is None:
        ctx.set_last_error(Win32Error.ERROR_NOT_FOUND)
        return None
    return module.base_address


@winapi(DLL)
def GetModuleHandleW(ctx: ApiContext, name: Optional[str]) -> Optional[int]:
    return GetModuleHandleA(ctx, name)


@winapi(DLL)
def LoadLibraryA(ctx: ApiContext, name: str) -> Optional[int]:
    """Load a DLL if its image exists on disk (system DLLs always do)."""
    module = ctx.process.modules.find(name)
    if module is not None:
        return module.base_address
    system_path = f"C:\\Windows\\System32\\{name}"
    if not ctx.machine.filesystem.exists(system_path):
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
        return None
    loaded = ctx.process.modules.load(name, system_path)
    ctx.emit("image", "LoadImage", name=name, injected=False)
    return loaded.base_address


@winapi(DLL)
def GetModuleFileNameA(ctx: ApiContext,
                       module_base: Optional[int] = None) -> str:
    """Path of a loaded module; defaults to the process executable."""
    if module_base is None:
        return ctx.process.image_path
    module = ctx.process.modules.module_at(module_base)
    return module.path if module is not None else ""


@winapi(DLL)
def GetModuleFileNameW(ctx: ApiContext,
                       module_base: Optional[int] = None) -> str:
    return GetModuleFileNameA(ctx, module_base)


@winapi(DLL)
def GetProcAddress(ctx: ApiContext, module_base: int,
                   proc_name: str) -> Optional[int]:
    """Resolve an export. Knows which exports exist per OS version.

    The model: an export "exists" when it is registered in the global API
    table for that DLL, *except* version-gated ones (``IsNativeVhdBoot`` is
    Windows 8+) and Wine's ``wine_get_unix_file_name``, which never exists
    on real Windows.
    """
    module = ctx.process.modules.module_at(module_base)
    if module is None:
        ctx.set_last_error(Win32Error.ERROR_INVALID_HANDLE)
        return None
    from .calling import _BARE_NAME_INDEX  # local import avoids cycle at load
    if proc_name == "IsNativeVhdBoot" and \
            not ctx.machine.os_version.is_windows8_or_later:
        ctx.set_last_error(Win32Error.ERROR_NOT_FOUND)
        return None
    if proc_name == "wine_get_unix_file_name":
        ctx.set_last_error(Win32Error.ERROR_NOT_FOUND)
        return None
    key = _BARE_NAME_INDEX.get(proc_name)
    if key is None or not key.startswith(module.name.lower().split(".")[0]):
        ctx.set_last_error(Win32Error.ERROR_NOT_FOUND)
        return None
    # crc32, not hash(): hash() is salted per process (PYTHONHASHSEED),
    # so fabricated addresses must come from a deterministic digest to
    # stay identical between serial and pooled sweeps.
    return module.base_address + \
        (zlib.crc32(proc_name.encode("utf-8", "replace")) & 0xFFFF)


# ---------------------------------------------------------------------------
# System information
# ---------------------------------------------------------------------------

@winapi(DLL)
def GetSystemInfo(ctx: ApiContext) -> SystemInfo:
    return ctx.machine.system_info()


@winapi(DLL)
def GlobalMemoryStatusEx(ctx: ApiContext) -> MemoryStatusEx:
    return ctx.machine.memory_status()


@winapi(DLL)
def GetVersionExA(ctx: ApiContext) -> OsVersionInfo:
    return ctx.machine.os_version


@winapi(DLL)
def GetComputerNameA(ctx: ApiContext) -> str:
    return ctx.machine.identity.hostname


@winapi(DLL)
def GetCommandLineA(ctx: ApiContext) -> str:
    return ctx.process.command_line


@winapi(DLL)
def IsNativeVhdBoot(ctx: ApiContext) -> Tuple[bool, bool]:
    """Returns ``(supported, native_vhd)`` — unsupported before Windows 8."""
    if not ctx.machine.os_version.is_windows8_or_later:
        ctx.set_last_error(Win32Error.ERROR_INVALID_PARAMETER)
        return (False, False)
    return (True, False)


@winapi(DLL)
def GetSystemFirmwareTable(ctx: ApiContext, provider: str = "RSMB") -> bytes:
    """Raw SMBIOS blob — what WMI Win32_BIOS queries boil down to."""
    firmware = ctx.machine.hardware.firmware
    fields = [firmware.bios_version, firmware.system_manufacturer,
              firmware.system_product, firmware.video_bios_version]
    if firmware.scsi_identifier:
        fields.append(firmware.scsi_identifier)
    return ("\x00".join(fields)).encode("ascii", errors="replace")


# ---------------------------------------------------------------------------
# Disk
# ---------------------------------------------------------------------------

@winapi(DLL)
def GetDiskFreeSpaceExA(ctx: ApiContext,
                        root: str = "C:\\") -> Tuple[bool, int, int]:
    """Returns ``(ok, free_bytes, total_bytes)`` for the drive of ``root``."""
    drive = ctx.machine.filesystem.drive(root[:2])
    if drive is None:
        ctx.set_last_error(Win32Error.ERROR_PATH_NOT_FOUND)
        return (False, 0, 0)
    return (True, drive.free_bytes, drive.total_bytes)


@winapi(DLL)
def DeviceIoControl(ctx: ApiContext, device: str, ioctl: int) -> Optional[dict]:
    """Only the drive-geometry IOCTL Pafish issues is modelled."""
    if ioctl != IOCTL_DISK_GET_DRIVE_GEOMETRY:
        ctx.set_last_error(Win32Error.ERROR_INVALID_PARAMETER)
        return None
    drive = ctx.machine.filesystem.drive("C:")
    if drive is None:
        ctx.set_last_error(Win32Error.ERROR_PATH_NOT_FOUND)
        return None
    bytes_per_sector = 512
    sectors_per_track = 63
    tracks_per_cylinder = 255
    cylinder_bytes = bytes_per_sector * sectors_per_track * tracks_per_cylinder
    return {
        "cylinders": drive.total_bytes // cylinder_bytes,
        "tracks_per_cylinder": tracks_per_cylinder,
        "sectors_per_track": sectors_per_track,
        "bytes_per_sector": bytes_per_sector,
    }


# ---------------------------------------------------------------------------
# Files and devices
# ---------------------------------------------------------------------------

@winapi(DLL)
def GetFileAttributesA(ctx: ApiContext, path: str) -> int:
    if path.startswith("\\\\.\\"):
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
        return INVALID_FILE_ATTRIBUTES
    node = ctx.machine.filesystem.stat(path)
    ctx.emit("file", "QueryAttributes", path=path, found=node is not None)
    if node is None:
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
        return INVALID_FILE_ATTRIBUTES
    return node.attributes


@winapi(DLL)
def GetFileAttributesW(ctx: ApiContext, path: str) -> int:
    return GetFileAttributesA(ctx, path)


@winapi(DLL)
def CreateFileA(ctx: ApiContext, path: str, write: bool = False) -> Handle:
    """Open a file or a ``\\\\.\\`` device; returns an invalid handle on miss."""
    machine = ctx.machine
    if path.startswith("\\\\.\\"):
        exists = machine.devices.exists(path)
        ctx.emit("file", "OpenDevice", path=path, found=exists)
        if exists:
            return machine.handles.open({"device": path}, "device")
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
        return Handle(INVALID_HANDLE_VALUE, "device")
    node = machine.filesystem.stat(path)
    if not write:
        ctx.emit("file", "OpenFile", path=path, found=node is not None)
    if node is None and not write:
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
        return Handle(INVALID_HANDLE_VALUE, "file")
    if write:
        # CREATE_ALWAYS semantics: (re)create truncated.
        machine.filesystem.write_file(
            path, b"", when_ms=machine.clock.tick_count_ms())
        ctx.emit("file", "CreateFile", path=path, write=True)
    return machine.handles.open({"path": path, "write": write}, "file")


@winapi(DLL)
def CreateFileW(ctx: ApiContext, path: str, write: bool = False) -> Handle:
    return CreateFileA(ctx, path, write)


@winapi(DLL)
def WriteFile(ctx: ApiContext, handle: Handle, data: bytes) -> bool:
    obj = ctx.machine.handles.resolve(handle, "file")
    if obj is None:
        ctx.set_last_error(Win32Error.ERROR_INVALID_HANDLE)
        return False
    existing = ctx.machine.filesystem.read_file(obj["path"]) or b""
    ctx.machine.filesystem.write_file(
        obj["path"], existing + data,
        when_ms=ctx.machine.clock.tick_count_ms())
    ctx.emit("file", "WriteFile", path=obj["path"], size=len(data))
    return True


@winapi(DLL)
def ReadFile(ctx: ApiContext, handle: Handle) -> Optional[bytes]:
    obj = ctx.machine.handles.resolve(handle, "file")
    if obj is None:
        ctx.set_last_error(Win32Error.ERROR_INVALID_HANDLE)
        return None
    return ctx.machine.filesystem.read_file(obj["path"])


@winapi(DLL)
def CloseHandle(ctx: ApiContext, handle: Handle) -> bool:
    return ctx.machine.handles.close(handle)


@winapi(DLL)
def DeleteFileA(ctx: ApiContext, path: str) -> bool:
    deleted = ctx.machine.filesystem.delete(path)
    if deleted:
        ctx.emit("file", "DeleteFile", path=path)
    else:
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
    return deleted


@winapi(DLL)
def MoveFileA(ctx: ApiContext, src: str, dst: str) -> bool:
    moved = ctx.machine.filesystem.rename(
        src, dst, when_ms=ctx.machine.clock.tick_count_ms())
    if moved:
        ctx.emit("file", "RenameFile", path=src, new_path=dst)
    return moved


@winapi(DLL)
def CreateDirectoryA(ctx: ApiContext, path: str) -> bool:
    ctx.machine.filesystem.makedirs(
        path, when_ms=ctx.machine.clock.tick_count_ms())
    ctx.emit("file", "CreateDirectory", path=path)
    return True


@winapi(DLL)
def FindFirstFileA(ctx: ApiContext, pattern: str) -> Optional[str]:
    """Match ``C:\\dir\\*.ext``; returns the first matching name or ``None``."""
    directory, _, mask = pattern.rpartition("\\")
    matches = ctx.machine.filesystem.glob(directory, mask)
    if not matches:
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
        return None
    return matches[0]


# ---------------------------------------------------------------------------
# Named mutexes
# ---------------------------------------------------------------------------

@winapi(DLL)
def CreateMutexA(ctx: ApiContext, name: Optional[str]) -> Handle:
    """Create/open a named mutex; sets ERROR_ALREADY_EXISTS when it existed.

    The single-instance-guard idiom: malware calls this with its marker
    name and exits if the mutex was already there — the surface the
    vaccination baseline exploits.
    """
    if name is None:
        return ctx.machine.handles.open({"mutex": None}, "mutex")
    created = ctx.machine.mutexes.create(name)
    ctx.set_last_error(Win32Error.ERROR_SUCCESS if created
                       else 183)  # ERROR_ALREADY_EXISTS
    ctx.emit("mutex", "CreateMutex", name=name, existed=not created)
    return ctx.machine.handles.open({"mutex": name}, "mutex")


@winapi(DLL)
def OpenMutexA(ctx: ApiContext, name: str) -> Optional[Handle]:
    """Open an existing named mutex; ``None`` (NULL) when absent."""
    if not ctx.machine.mutexes.exists(name):
        ctx.set_last_error(Win32Error.ERROR_FILE_NOT_FOUND)
        return None
    return ctx.machine.handles.open({"mutex": name}, "mutex")


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------

@winapi(DLL)
def CreateProcessA(ctx: ApiContext, image_path: str, command_line: str = "",
                   creation_flags: int = 0):
    """Spawn a child of the calling process; returns the Process object.

    The returned object doubles as the process handle in the simulation.
    """
    name = image_path.rsplit("\\", 1)[-1]
    child = ctx.machine.spawn_process(
        name, image_path, parent=ctx.process,
        command_line=command_line or image_path,
        suspended=bool(creation_flags & CREATE_SUSPENDED))
    # Untrusted lineage is contagious: children of an untrusted process
    # are untrusted too (Scarecrow relies on this for kill protection).
    if ctx.process.tags.get("untrusted"):
        child.tags["untrusted"] = True
    return child


@winapi(DLL)
def CreateProcessW(ctx: ApiContext, image_path: str, command_line: str = "",
                   creation_flags: int = 0):
    return CreateProcessA(ctx, image_path, command_line, creation_flags)


@winapi(DLL)
def TerminateProcess(ctx: ApiContext, pid: int, exit_code: int = 0) -> bool:
    """Kill ``pid``. Scarecrow-protected processes resist untrusted callers."""
    untrusted = bool(ctx.process.tags.get("untrusted"))
    ok = ctx.machine.processes.terminate(pid, exit_code,
                                         by_untrusted=untrusted)
    if not ok:
        ctx.set_last_error(Win32Error.ERROR_ACCESS_DENIED)
    return ok


@winapi(DLL)
def ExitProcess(ctx: ApiContext, exit_code: int = 0) -> None:
    ctx.machine.processes.terminate(ctx.process.pid, exit_code)


@winapi(DLL)
def CreateToolhelp32Snapshot(ctx: ApiContext) -> Handle:
    """Snapshot the live process list for Process32First/Next iteration."""
    entries = [(p.pid, p.name) for p in ctx.machine.processes.running()]
    ctx.emit("process", "EnumProcesses", name="SystemProcessList",
             count=len(entries))
    return ctx.machine.handles.open({"entries": entries, "index": 0},
                                    "toolhelp")


@winapi(DLL)
def Process32First(ctx: ApiContext, snapshot: Handle) -> Optional[Tuple[int, str]]:
    obj = ctx.machine.handles.resolve(snapshot, "toolhelp")
    if obj is None:
        ctx.set_last_error(Win32Error.ERROR_INVALID_HANDLE)
        return None
    obj["index"] = 0
    return Process32Next(ctx, snapshot)


@winapi(DLL)
def Process32Next(ctx: ApiContext, snapshot: Handle) -> Optional[Tuple[int, str]]:
    obj = ctx.machine.handles.resolve(snapshot, "toolhelp")
    if obj is None:
        ctx.set_last_error(Win32Error.ERROR_INVALID_HANDLE)
        return None
    if obj["index"] >= len(obj["entries"]):
        ctx.set_last_error(Win32Error.ERROR_NO_MORE_ITEMS)
        return None
    entry = obj["entries"][obj["index"]]
    obj["index"] += 1
    return entry
