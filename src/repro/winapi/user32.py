"""user32.dll — window and input surface."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..winsim.errors import Win32Error
from .calling import ApiContext, winapi

DLL = "user32.dll"


@winapi(DLL)
def FindWindowA(ctx: ApiContext, class_name: Optional[str],
                title: Optional[str] = None) -> Optional[int]:
    """HWND of the first window matching class/title, or ``None``.

    This is the debugger-window probe of Section II-B(d): malware passes
    ``"OLLYDBG"`` / ``"WinDbgFrameClass"`` and treats a hit as a debugger.
    """
    window = ctx.machine.gui.find_window(class_name, title)
    if window is None:
        ctx.set_last_error(Win32Error.ERROR_NOT_FOUND)
        return None
    return window.hwnd


@winapi(DLL)
def FindWindowW(ctx: ApiContext, class_name: Optional[str],
                title: Optional[str] = None) -> Optional[int]:
    return FindWindowA(ctx, class_name, title)


@winapi(DLL)
def GetCursorPos(ctx: ApiContext) -> Tuple[int, int]:
    return ctx.machine.gui.cursor_at_time(ctx.machine.clock.now_ns)


@winapi(DLL)
def GetForegroundWindow(ctx: ApiContext) -> Optional[int]:
    windows = ctx.machine.gui.windows()
    return windows[-1].hwnd if windows else None


@winapi(DLL)
def EnumWindows(ctx: ApiContext) -> List[Tuple[int, Optional[str], Optional[str]]]:
    """``(hwnd, class_name, title)`` of every top-level window."""
    return [(w.hwnd, w.class_name, w.title) for w in ctx.machine.gui.windows()]


@winapi(DLL)
def GetSystemMetrics(ctx: ApiContext, index: int) -> int:
    # SM_CXSCREEN / SM_CYSCREEN: a plausible desktop resolution.
    if index == 0:
        return 1920
    if index == 1:
        return 1080
    return 0
