"""advapi32.dll — Win32 registry APIs, username, services.

``RegOpenKeyEx`` existence probes are the single most common anti-VM check
(``SOFTWARE\\Oracle\\VirtualBox Guest Additions``, ``SOFTWARE\\VMware,
Inc.\\VMware Tools``); Scarecrow's handler answers them with SUCCESS.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..winsim.errors import Win32Error
from ..winsim.types import Handle, INVALID_HANDLE_VALUE
from .calling import ApiContext, winapi

DLL = "advapi32.dll"


def _join(hive: str, subkey: str) -> str:
    return f"{hive}\\{subkey}" if subkey else hive


# ---------------------------------------------------------------------------
# Registry, Win32 flavour
# ---------------------------------------------------------------------------

@winapi(DLL)
def RegOpenKeyExA(ctx: ApiContext, hive: str,
                  subkey: str) -> Tuple[int, Handle]:
    """``(ERROR_SUCCESS, handle)`` or ``(ERROR_FILE_NOT_FOUND, invalid)``."""
    path = _join(hive, subkey)
    key = ctx.machine.registry.open_key(path)
    ctx.emit("registry", "RegOpenKey", key=path, found=key is not None)
    if key is None:
        return (Win32Error.ERROR_FILE_NOT_FOUND,
                Handle(INVALID_HANDLE_VALUE, "key"))
    return (Win32Error.ERROR_SUCCESS, ctx.machine.handles.open(key, "key"))


@winapi(DLL)
def RegOpenKeyExW(ctx: ApiContext, hive: str,
                  subkey: str) -> Tuple[int, Handle]:
    return RegOpenKeyExA(ctx, hive, subkey)


@winapi(DLL)
def RegQueryValueExA(ctx: ApiContext, handle: Handle,
                     name: str) -> Tuple[int, Optional[Any]]:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (Win32Error.ERROR_INVALID_HANDLE, None)
    value = key.get_value(name)
    ctx.emit("registry", "RegQueryValue", key=key.path(), value=name,
             found=value is not None)
    if value is None:
        return (Win32Error.ERROR_FILE_NOT_FOUND, None)
    return (Win32Error.ERROR_SUCCESS, value.data)


@winapi(DLL)
def RegQueryValueExW(ctx: ApiContext, handle: Handle,
                     name: str) -> Tuple[int, Optional[Any]]:
    return RegQueryValueExA(ctx, handle, name)


@winapi(DLL)
def RegEnumKeyExA(ctx: ApiContext, handle: Handle,
                  index: int) -> Tuple[int, Optional[str]]:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (Win32Error.ERROR_INVALID_HANDLE, None)
    names = key.subkey_names()
    if index >= len(names):
        return (Win32Error.ERROR_NO_MORE_ITEMS, None)
    return (Win32Error.ERROR_SUCCESS, names[index])


@winapi(DLL)
def RegEnumValueA(ctx: ApiContext, handle: Handle,
                  index: int) -> Tuple[int, Optional[Tuple[str, Any]]]:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (Win32Error.ERROR_INVALID_HANDLE, None)
    values = key.values()
    if index >= len(values):
        return (Win32Error.ERROR_NO_MORE_ITEMS, None)
    return (Win32Error.ERROR_SUCCESS, (values[index].name, values[index].data))


@winapi(DLL)
def RegQueryInfoKeyA(ctx: ApiContext,
                     handle: Handle) -> Tuple[int, Optional[dict]]:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (Win32Error.ERROR_INVALID_HANDLE, None)
    return (Win32Error.ERROR_SUCCESS,
            {"subkeys": key.subkey_count(), "values": key.value_count()})


@winapi(DLL)
def RegCloseKey(ctx: ApiContext, handle: Handle) -> int:
    return (Win32Error.ERROR_SUCCESS if ctx.machine.handles.close(handle)
            else Win32Error.ERROR_INVALID_HANDLE)


@winapi(DLL)
def RegCreateKeyExA(ctx: ApiContext, hive: str,
                    subkey: str) -> Tuple[int, Handle]:
    path = _join(hive, subkey)
    key = ctx.machine.registry.create_key(path)
    ctx.emit("registry", "RegCreateKey", key=path)
    return (Win32Error.ERROR_SUCCESS, ctx.machine.handles.open(key, "key"))


@winapi(DLL)
def RegSetValueExA(ctx: ApiContext, handle: Handle, name: str,
                   data: Any) -> int:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return Win32Error.ERROR_INVALID_HANDLE
    key.set_value(name, data)
    ctx.emit("registry", "RegSetValue", key=key.path(), value=name)
    return Win32Error.ERROR_SUCCESS


@winapi(DLL)
def RegDeleteKeyA(ctx: ApiContext, hive: str, subkey: str) -> int:
    path = _join(hive, subkey)
    deleted = ctx.machine.registry.delete_key(path)
    if deleted:
        ctx.emit("registry", "RegDeleteKey", key=path)
    return (Win32Error.ERROR_SUCCESS if deleted
            else Win32Error.ERROR_FILE_NOT_FOUND)


# ---------------------------------------------------------------------------
# Identity and services
# ---------------------------------------------------------------------------

@winapi(DLL)
def GetUserNameA(ctx: ApiContext) -> str:
    return ctx.machine.identity.username


@winapi(DLL)
def GetUserNameW(ctx: ApiContext) -> str:
    return GetUserNameA(ctx)


@winapi(DLL)
def EnumServicesStatusA(ctx: ApiContext) -> List[Tuple[str, str]]:
    """``(name, display_name)`` of every installed service."""
    return [(s.name, s.display_name) for s in ctx.machine.services.all()]


@winapi(DLL)
def OpenServiceA(ctx: ApiContext, name: str) -> Tuple[int, Optional[str]]:
    service = ctx.machine.services.get(name)
    if service is None:
        ctx.set_last_error(Win32Error.ERROR_SERVICE_DOES_NOT_EXIST)
        return (Win32Error.ERROR_SERVICE_DOES_NOT_EXIST, None)
    return (Win32Error.ERROR_SUCCESS, service.name)
