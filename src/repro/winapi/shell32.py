"""shell32.dll — only ``ShellExecuteExW``, which Cuckoo's monitor hooks.

Pafish's Hook category reads this export's prologue; in our Cuckoo-sandbox
environment the sandbox monitor installs an inline hook here, so the probe
fires exactly as in Table II.
"""

from __future__ import annotations

from .calling import ApiContext, winapi

DLL = "shell32.dll"


@winapi(DLL)
def ShellExecuteExW(ctx: ApiContext, image_path: str,
                    parameters: str = ""):
    """Launch via the shell; parent becomes the caller, as with CreateProcess."""
    name = image_path.rsplit("\\", 1)[-1]
    child = ctx.machine.spawn_process(
        name, image_path, parent=ctx.process,
        command_line=f"{image_path} {parameters}".strip())
    if ctx.process.tags.get("untrusted"):
        child.tags["untrusted"] = True
    return child
