"""ntdll.dll — the native API surface evasive malware prefers.

Calling ``Nt*`` directly is itself an evasion trick (it skips Win32-layer
hooks), which is why Scarecrow hooks these too. Handles returned by
``NtOpenKeyEx`` live in the machine handle table so ``NtQueryKey`` /
``NtQueryValueKey`` can be issued against them exactly as real malware
chains the calls.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Tuple

from ..winsim.errors import NtStatus
from ..winsim.types import Handle, INVALID_HANDLE_VALUE
from .calling import ApiContext, winapi

DLL = "ntdll.dll"


class SystemInformationClass(enum.IntEnum):
    """``NtQuerySystemInformation`` classes used by fingerprinting code."""

    SystemBasicInformation = 0
    SystemProcessInformation = 5
    SystemKernelDebuggerInformation = 35
    SystemRegistryQuotaInformation = 37


class ProcessInformationClass(enum.IntEnum):
    """``NtQueryInformationProcess`` classes used by anti-debug code."""

    ProcessBasicInformation = 0
    ProcessDebugPort = 7
    ProcessDebugObjectHandle = 30
    ProcessDebugFlags = 31


# ---------------------------------------------------------------------------
# Registry (native path)
# ---------------------------------------------------------------------------

@winapi(DLL)
def NtOpenKeyEx(ctx: ApiContext, path: str) -> Tuple[int, Handle]:
    """Open a registry key by full path; ``(STATUS, handle)``."""
    key = ctx.machine.registry.open_key(path)
    ctx.emit("registry", "RegOpenKey", key=path,
             found=key is not None, native=True)
    if key is None:
        return (NtStatus.STATUS_OBJECT_NAME_NOT_FOUND,
                Handle(INVALID_HANDLE_VALUE, "key"))
    return (NtStatus.STATUS_SUCCESS, ctx.machine.handles.open(key, "key"))


@winapi(DLL)
def NtQueryKey(ctx: ApiContext, handle: Handle) -> Tuple[int, Optional[dict]]:
    """Key cardinality info: subkey and value counts (KEY_FULL_INFORMATION)."""
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (NtStatus.STATUS_INVALID_HANDLE, None)
    return (NtStatus.STATUS_SUCCESS,
            {"subkeys": key.subkey_count(), "values": key.value_count(),
             "name": key.name})


@winapi(DLL)
def NtQueryValueKey(ctx: ApiContext, handle: Handle,
                    name: str) -> Tuple[int, Optional[Any]]:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (NtStatus.STATUS_INVALID_HANDLE, None)
    value = key.get_value(name)
    ctx.emit("registry", "RegQueryValue", key=key.path(), value=name,
             found=value is not None, native=True)
    if value is None:
        return (NtStatus.STATUS_OBJECT_NAME_NOT_FOUND, None)
    return (NtStatus.STATUS_SUCCESS, value.data)


@winapi(DLL)
def NtEnumerateKey(ctx: ApiContext, handle: Handle,
                   index: int) -> Tuple[int, Optional[str]]:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (NtStatus.STATUS_INVALID_HANDLE, None)
    names = key.subkey_names()
    if index >= len(names):
        return (NtStatus.STATUS_NO_MORE_ENTRIES, None)
    return (NtStatus.STATUS_SUCCESS, names[index])


@winapi(DLL)
def NtEnumerateValueKey(ctx: ApiContext, handle: Handle,
                        index: int) -> Tuple[int, Optional[Tuple[str, Any]]]:
    key = ctx.machine.handles.resolve(handle, "key")
    if key is None:
        return (NtStatus.STATUS_INVALID_HANDLE, None)
    values = key.values()
    if index >= len(values):
        return (NtStatus.STATUS_NO_MORE_ENTRIES, None)
    return (NtStatus.STATUS_SUCCESS, (values[index].name, values[index].data))


# ---------------------------------------------------------------------------
# Files (native path)
# ---------------------------------------------------------------------------

@winapi(DLL)
def NtQueryAttributesFile(ctx: ApiContext, path: str) -> Tuple[int, Optional[int]]:
    """Existence + attributes probe — the ``vmmouse.sys`` check of Table I."""
    node = ctx.machine.filesystem.stat(path)
    ctx.emit("file", "QueryAttributes", path=path, found=node is not None)
    if node is None:
        return (NtStatus.STATUS_OBJECT_NAME_NOT_FOUND, None)
    return (NtStatus.STATUS_SUCCESS, node.attributes)


@winapi(DLL)
def NtCreateFile(ctx: ApiContext, path: str,
                 write: bool = False) -> Tuple[int, Handle]:
    if path.startswith("\\\\.\\"):
        exists = ctx.machine.devices.exists(path)
        ctx.emit("file", "OpenDevice", path=path, found=exists, native=True)
        if exists:
            return (NtStatus.STATUS_SUCCESS,
                    ctx.machine.handles.open({"device": path}, "device"))
        return (NtStatus.STATUS_OBJECT_NAME_NOT_FOUND,
                Handle(INVALID_HANDLE_VALUE, "device"))
    node = ctx.machine.filesystem.stat(path)
    if node is None and not write:
        return (NtStatus.STATUS_NO_SUCH_FILE,
                Handle(INVALID_HANDLE_VALUE, "file"))
    if write:
        # FILE_OVERWRITE_IF semantics: (re)create truncated.
        ctx.machine.filesystem.write_file(
            path, b"", when_ms=ctx.machine.clock.tick_count_ms())
        ctx.emit("file", "CreateFile", path=path, write=True, native=True)
    return (NtStatus.STATUS_SUCCESS,
            ctx.machine.handles.open({"path": path, "write": write}, "file"))


@winapi(DLL)
def NtClose(ctx: ApiContext, handle: Handle) -> int:
    return (NtStatus.STATUS_SUCCESS if ctx.machine.handles.close(handle)
            else NtStatus.STATUS_INVALID_HANDLE)


# ---------------------------------------------------------------------------
# System / process information
# ---------------------------------------------------------------------------

@winapi(DLL)
def NtQuerySystemInformation(ctx: ApiContext,
                             info_class: int) -> Tuple[int, Optional[Any]]:
    machine = ctx.machine
    if info_class == SystemInformationClass.SystemBasicInformation:
        return (NtStatus.STATUS_SUCCESS,
                {"number_of_processors": machine.hardware.cpu.cores,
                 "physical_pages": machine.hardware.total_ram // 4096})
    if info_class == SystemInformationClass.SystemProcessInformation:
        return (NtStatus.STATUS_SUCCESS,
                [{"pid": p.pid, "name": p.name, "ppid": p.parent_pid}
                 for p in machine.processes.running()])
    if info_class == SystemInformationClass.SystemKernelDebuggerInformation:
        return (NtStatus.STATUS_SUCCESS,
                {"debugger_enabled": False, "debugger_not_present": True})
    if info_class == SystemInformationClass.SystemRegistryQuotaInformation:
        return (NtStatus.STATUS_SUCCESS,
                {"registry_quota_allowed": 0x20000000,
                 "registry_quota_used": machine.registry.estimated_size_bytes()})
    return (NtStatus.STATUS_INVALID_PARAMETER, None)


@winapi(DLL)
def NtQueryInformationProcess(ctx: ApiContext, info_class: int,
                              pid: Optional[int] = None
                              ) -> Tuple[int, Optional[Any]]:
    process = ctx.process if pid is None else ctx.machine.processes.get(pid)
    if process is None:
        return (NtStatus.STATUS_INVALID_PARAMETER, None)
    if info_class == ProcessInformationClass.ProcessBasicInformation:
        return (NtStatus.STATUS_SUCCESS,
                {"pid": process.pid, "parent_pid": process.parent_pid,
                 "peb_being_debugged": process.peb.being_debugged})
    if info_class == ProcessInformationClass.ProcessDebugPort:
        return (NtStatus.STATUS_SUCCESS,
                0xFFFFFFFF if process.peb.being_debugged else 0)
    if info_class == ProcessInformationClass.ProcessDebugFlags:
        # NoDebugInherit == 0 means "being debugged".
        return (NtStatus.STATUS_SUCCESS,
                0 if process.peb.being_debugged else 1)
    if info_class == ProcessInformationClass.ProcessDebugObjectHandle:
        if process.peb.being_debugged:
            return (NtStatus.STATUS_SUCCESS, 0x1234)
        return (NtStatus.STATUS_OBJECT_NAME_NOT_FOUND, None)
    return (NtStatus.STATUS_INVALID_PARAMETER, None)


@winapi(DLL)
def NtDelayExecution(ctx: ApiContext, milliseconds: int) -> int:
    ctx.machine.clock.sleep(float(milliseconds))
    return NtStatus.STATUS_SUCCESS


@winapi(DLL)
def NtSetInformationThread(ctx: ApiContext, info_class: int,
                           value: Any = None) -> int:
    """ThreadHideFromDebugger et al. — accepted and recorded, no behaviour."""
    ctx.process.tags.setdefault("thread_info_set", []).append(info_class)
    return NtStatus.STATUS_SUCCESS
