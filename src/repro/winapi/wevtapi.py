"""wevtapi.dll — event log query surface for the wear-and-tear artifacts."""

from __future__ import annotations

from typing import List, Optional

from ..winsim.errors import Win32Error
from ..winsim.eventlog import EventRecord
from ..winsim.types import Handle, INVALID_HANDLE_VALUE
from .calling import ApiContext, winapi

DLL = "wevtapi.dll"


@winapi(DLL)
def EvtQuery(ctx: ApiContext, channel: str = "System") -> Handle:
    log = ctx.machine.eventlog
    if log.channel.lower() != channel.lower():
        ctx.set_last_error(Win32Error.ERROR_NOT_FOUND)
        return Handle(INVALID_HANDLE_VALUE, "event_query")
    cursor = {"records": log.records(), "index": 0}
    return ctx.machine.handles.open(cursor, "event_query")


@winapi(DLL)
def EvtNext(ctx: ApiContext, query: Handle,
            count: int = 64) -> Optional[List[EventRecord]]:
    """Next batch of records; ``None`` once exhausted (ERROR_NO_MORE_ITEMS).

    Scarecrow's ``sysevt``/``syssrc`` deception hooks exactly here and caps
    the total records yielded at the sandbox-typical 8,000.
    """
    cursor = ctx.machine.handles.resolve(query, "event_query")
    if cursor is None:
        ctx.set_last_error(Win32Error.ERROR_INVALID_HANDLE)
        return None
    records = cursor["records"]
    index = cursor["index"]
    if index >= len(records):
        ctx.set_last_error(Win32Error.ERROR_NO_MORE_ITEMS)
        return None
    batch = records[index:index + count]
    cursor["index"] = index + len(batch)
    return batch
