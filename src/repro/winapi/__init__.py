"""Simulated Win32 / Native API layer.

Importing this package registers every export into the global API table;
:func:`bind` then gives a per-process :class:`ApiContext` through which
simulated programs call the APIs (and through which inline hooks fire).
"""

from . import (advapi32, dnsapi, iphlpapi, kernel32, ntdll, shell32, user32,
               wevtapi, ws2_32)
from .calling import (API_CALL_COST_NS, ApiContext, CallRecord, EXPORTS,
                      bind, export_name, winapi)
from .kernel32 import (CREATE_SUSPENDED, INVALID_FILE_ATTRIBUTES,
                       IOCTL_DISK_GET_DRIVE_GEOMETRY)
from .ntdll import ProcessInformationClass, SystemInformationClass

__all__ = [
    "API_CALL_COST_NS", "ApiContext", "CallRecord", "CREATE_SUSPENDED",
    "EXPORTS", "INVALID_FILE_ATTRIBUTES", "IOCTL_DISK_GET_DRIVE_GEOMETRY",
    "ProcessInformationClass", "SystemInformationClass", "bind",
    "export_name", "winapi",
    "advapi32", "dnsapi", "iphlpapi", "kernel32", "ntdll", "shell32",
    "user32", "wevtapi", "ws2_32",
]
