"""ws2_32.dll + wininet.dll — sockets-level resolution and HTTP probing."""

from __future__ import annotations

from typing import Optional

from .calling import ApiContext, winapi


@winapi("ws2_32.dll")
def gethostbyname(ctx: ApiContext, name: str) -> Optional[str]:
    """Classic resolver entry point; ``None`` models WSAHOST_NOT_FOUND."""
    ip = ctx.machine.network.resolve(name)
    ctx.emit("net", "DnsQuery", domain=name, answer=ip)
    if ip is not None:
        ctx.machine.dnscache.add(name)
    return ip


@winapi("wininet.dll")
def InternetOpenUrlA(ctx: ApiContext, url: str) -> bool:
    """``True`` when an HTTP GET to ``url``'s host gets any response.

    This is the exact call shape of the WannaCry kill switch: resolve the
    hard-coded domain, try an HTTP GET, and *exit if it succeeds*.
    """
    host = url.split("//", 1)[-1].split("/", 1)[0]
    ip = ctx.machine.network.resolve(host)
    reachable = ctx.machine.network.http_get(ip)
    ctx.emit("net", "HttpGet", domain=host, answer=ip, reachable=reachable)
    return reachable


@winapi("wininet.dll")
def InternetCheckConnectionA(ctx: ApiContext, url: str) -> bool:
    return InternetOpenUrlA(ctx, url)
