"""Asyncio admission front-end for the sharded fleet (``repro serve``).

The paper's deployment story is an always-on protection *service*; this
package puts a serving surface in front of :mod:`repro.fleet`'s sharded
execution engine: a line-delimited JSON-RPC protocol
(:mod:`~repro.serve.protocol`) over TCP or stdio, per-tenant bounded
admission with explicit overload rejections
(:mod:`~repro.serve.admission`), deterministic endpoint→shard routing
(:func:`~repro.fleet.shard.shard_of`) into an in-process execution
backend (:mod:`~repro.serve.backend`), and verdict batches streamed back
(:mod:`~repro.serve.server`). See ``docs/FLEET.md``.

The package is a scarelint deterministic zone: verdicts are pure
functions of the submitted events, and nothing here reads the host clock
or entropy — backpressure is expressed in queue occupancy, not time.
"""

from .admission import (DEFAULT_TENANT_LIMIT, AdmissionController,
                        TenantState)
from .backend import ShardedBackend
from .protocol import (ERROR_INVALID_PARAMS, ERROR_INVALID_REQUEST,
                       ERROR_METHOD_NOT_FOUND, ERROR_OVERLOADED,
                       ERROR_PARSE, PROTOCOL_VERSION, ProtocolError,
                       ServeRequest, encode_error, encode_response,
                       event_from_dict, event_to_dict, parse_events,
                       parse_request)
from .server import DEFAULT_MAX_BATCH, FleetServer, ServeConfig

__all__ = [
    "AdmissionController", "DEFAULT_MAX_BATCH", "DEFAULT_TENANT_LIMIT",
    "ERROR_INVALID_PARAMS", "ERROR_INVALID_REQUEST",
    "ERROR_METHOD_NOT_FOUND", "ERROR_OVERLOADED", "ERROR_PARSE",
    "FleetServer", "PROTOCOL_VERSION", "ProtocolError", "ServeConfig",
    "ServeRequest", "ShardedBackend", "TenantState", "encode_error",
    "encode_response", "event_from_dict", "event_to_dict", "parse_events",
    "parse_request",
]
