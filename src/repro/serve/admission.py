"""Per-tenant bounded admission: the serving layer's backpressure model.

Each tenant owns a bounded count of *pending* (admitted but not yet
verdicted) events. A ``submit`` whose batch would push the tenant over
its bound is rejected with :data:`~repro.serve.protocol.ERROR_OVERLOADED`
— an explicit, counted rejection the client retries, never a silent
drop or an unbounded queue. This mirrors the fleet's offline admission
model (:func:`~repro.fleet.service.plan_rounds`): occupancy, not time,
is the pressure signal, which keeps the whole serving path inside the
scarelint deterministic zone.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

#: Default per-tenant pending-event bound.
DEFAULT_TENANT_LIMIT = 256


@dataclasses.dataclass
class TenantState:
    """Admission bookkeeping for one tenant."""

    pending: int = 0
    pending_hwm: int = 0
    admitted_events: int = 0
    rejected_batches: int = 0

    def to_dict(self) -> dict:
        return {"pending": self.pending, "pending_hwm": self.pending_hwm,
                "admitted_events": self.admitted_events,
                "rejected_batches": self.rejected_batches}


class AdmissionController:
    """Bounded per-tenant admission with overload rejection.

    Not thread-safe by design: the server drives it from a single
    asyncio event loop, where admit/release interleave deterministically
    with request handling.
    """

    def __init__(self, tenant_limit: int = DEFAULT_TENANT_LIMIT) -> None:
        if tenant_limit < 1:
            raise ValueError("tenant_limit must be >= 1")
        self.tenant_limit = tenant_limit
        self.tenants: Dict[str, TenantState] = {}

    def _state(self, tenant: str) -> TenantState:
        state = self.tenants.get(tenant)
        if state is None:
            state = self.tenants[tenant] = TenantState()
        return state

    def try_admit(self, tenant: str, events: int) -> bool:
        """Admit ``events`` for ``tenant``, or reject the whole batch.

        Admission is all-or-nothing per batch (a partially-admitted
        batch would split an endpoint's arrival order across retries).
        """
        if events < 0:
            raise ValueError("events must be >= 0")
        state = self._state(tenant)
        if state.pending + events > self.tenant_limit:
            state.rejected_batches += 1
            return False
        state.pending += events
        state.pending_hwm = max(state.pending_hwm, state.pending)
        state.admitted_events += events
        return True

    def release(self, tenant: str, events: int) -> None:
        """Return verdicted events' slots to the tenant's budget."""
        state = self._state(tenant)
        state.pending = max(0, state.pending - events)

    @property
    def rejected_batches(self) -> int:
        return sum(state.rejected_batches
                   for state in self.tenants.values())

    @property
    def admitted_events(self) -> int:
        return sum(state.admitted_events
                   for state in self.tenants.values())

    def stats(self) -> dict:
        """Canonical per-tenant + total admission statistics."""
        return {"tenant_limit": self.tenant_limit,
                "admitted_events": self.admitted_events,
                "rejected_batches": self.rejected_batches,
                "tenants": {tenant: state.to_dict()
                            for tenant, state
                            in sorted(self.tenants.items())}}
