"""Asyncio serving loop: TCP/stdio transports over the line protocol.

:class:`FleetServer` glues the three layers together: parse
(:mod:`~repro.serve.protocol`) → admit (:mod:`~repro.serve.admission`)
→ execute (:mod:`~repro.serve.backend`) → respond. The server is a
single asyncio event loop; an :class:`asyncio.Lock` serializes backend
execution so submissions from concurrent connections interleave at
batch granularity while the bounded per-tenant admission (checked
*before* waiting on the lock) keeps the wait set finite — overload is
rejected immediately with ``ERROR_OVERLOADED``, not queued.

Transports:

* **TCP** — :meth:`FleetServer.start_tcp` (``asyncio.start_server``;
  port 0 picks an ephemeral port, used by the round-trip smoke test).
* **stdio** — :meth:`FleetServer.process_lines` folds an iterable of
  request lines into response lines; the CLI drives it with stdin.

Every request outcome is counted (``serve.*`` in the stats method and,
when telemetry is enabled, in the process registry for ``repro stats``).
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..parallel.factories import FactorySpec
from ..telemetry.metrics import TELEMETRY
from ..fleet.service import DEFAULT_FLEET_FACTORY
from .admission import DEFAULT_TENANT_LIMIT, AdmissionController
from .backend import ShardedBackend
from .protocol import (ERROR_INVALID_PARAMS, ERROR_OVERLOADED,
                       PROTOCOL_VERSION, ProtocolError, ServeRequest,
                       encode_error, encode_response, event_to_dict,
                       parse_events, parse_request)

#: Default per-submission event cap (a single oversized batch cannot
#: starve every other tenant behind the execution lock).
DEFAULT_MAX_BATCH = 128

#: Tenant used when a submit request names none.
DEFAULT_TENANT = "default"


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Construction-time knobs of one :class:`FleetServer`."""

    machine_factory: FactorySpec = DEFAULT_FLEET_FACTORY
    shards: int = 1
    tenant_limit: int = DEFAULT_TENANT_LIMIT
    max_batch: int = DEFAULT_MAX_BATCH
    max_retries: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.tenant_limit < 1:
            raise ValueError("tenant_limit must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


class FleetServer:
    """One admission front-end instance (one event loop, N connections)."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 backend: Optional[ShardedBackend] = None) -> None:
        self.config = config or ServeConfig()
        self.backend = backend if backend is not None else ShardedBackend(
            self.config.machine_factory, shards=self.config.shards,
            max_retries=self.config.max_retries)
        self.admission = AdmissionController(self.config.tenant_limit)
        self.counters: Dict[str, int] = {
            "requests": 0, "submits": 0, "events": 0, "verdicts": 0,
            "rejections": 0, "errors": 0, "rollouts": 0}
        self._execute_lock: Optional[asyncio.Lock] = None

    def _lock(self) -> asyncio.Lock:
        # Created lazily so the server can be built outside a loop and
        # the lock binds to whichever loop actually serves.
        if self._execute_lock is None:
            self._execute_lock = asyncio.Lock()
        return self._execute_lock

    def _count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        if TELEMETRY.enabled:
            TELEMETRY.count(f"serve.{name}", value)

    # -- request handling ------------------------------------------------------

    async def handle_line(self, line: str) -> str:
        """One request line → one response line (never raises)."""
        self._count("requests")
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self._count("errors")
            return encode_error(exc.request_id, exc.code, exc.message)
        try:
            if request.method == "ping":
                return encode_response(request.id, self._ping())
            if request.method == "stats":
                return encode_response(request.id, self._stats())
            if request.method == "dbops.status":
                return encode_response(request.id, self._dbops_status())
            if request.method == "dbops.rollout":
                return encode_response(request.id,
                                       self._dbops_rollout(request))
            return encode_response(request.id,
                                   await self._submit(request))
        except ProtocolError as exc:
            self._count("errors" if exc.code != ERROR_OVERLOADED
                        else "rejections")
            return encode_error(request.id, exc.code, exc.message)

    def _ping(self) -> Mapping[str, Any]:
        return {"ok": True, "v": PROTOCOL_VERSION,
                "shards": self.backend.shards}

    def _stats(self) -> Mapping[str, Any]:
        return {"v": PROTOCOL_VERSION,
                "serve": dict(sorted(self.counters.items())),
                "admission": self.admission.stats(),
                "shards": {"count": self.backend.shards,
                           "batches": {str(shard): count for shard, count
                                       in sorted(
                                           self.backend.shard_batches
                                           .items())}},
                "dbops": self._dbops_status()}

    def _dbops_status(self) -> Dict[str, Any]:
        """What the backend is serving right now."""
        return {"database_version": self.backend.database_version,
                "rollouts": self.backend.rollouts,
                "fingerprint": self.backend.database_fingerprint}

    def _dbops_rollout(self, request: ServeRequest) -> Mapping[str, Any]:
        """Hot-swap the serving database to a published store version.

        Params: ``{"store": <VersionStore root>, "version": <id>}``.
        The swap is synchronous and happens between submissions (the
        caller holds no lock because the backend re-initializes lazily
        on the next submit) — no restart, no dropped verdicts.
        """
        # Deferred import: repro.dbops pulls in the collection pipeline
        # and its machine factories; the serving hot path never needs
        # any of that unless a rollout actually arrives.
        from ..dbops.versions import VersionStoreError, VersionStore

        store_root = request.params.get("store")
        if not isinstance(store_root, str) or not store_root:
            raise ProtocolError(ERROR_INVALID_PARAMS,
                                "params.store must be a directory path",
                                request.id)
        version_raw = request.params.get("version")
        if not isinstance(version_raw, int) or \
                isinstance(version_raw, bool) or version_raw < 1:
            raise ProtocolError(ERROR_INVALID_PARAMS,
                                "params.version must be a published "
                                "version id (>= 1)", request.id)
        try:
            store = VersionStore(store_root)
            version = store.get(version_raw)
            database = store.load_database(version_raw)
        except VersionStoreError as exc:
            raise ProtocolError(ERROR_INVALID_PARAMS, str(exc),
                                request.id) from exc
        self.backend.adopt_version(version.version_id, database)
        self._count("rollouts")
        return {"adopted": version.version_id,
                "fingerprint": version.fingerprint,
                "label": version.label,
                "rollouts": self.backend.rollouts}

    async def _submit(self, request: ServeRequest) -> Mapping[str, Any]:
        tenant = request.params.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(ERROR_INVALID_PARAMS,
                                "tenant must be a non-empty string",
                                request.id)
        events = parse_events(request.params, request.id)
        if len(events) > self.config.max_batch:
            raise ProtocolError(
                ERROR_OVERLOADED,
                f"batch of {len(events)} events exceeds max_batch "
                f"{self.config.max_batch}", request.id)
        if not self.admission.try_admit(tenant, len(events)):
            raise ProtocolError(
                ERROR_OVERLOADED,
                f"tenant {tenant!r} admission queue full "
                f"({self.admission.tenant_limit} pending events max); "
                f"retry after verdicts drain", request.id)
        try:
            async with self._lock():
                records, routed = self.backend.submit(events)
        finally:
            self.admission.release(tenant, len(events))
        self._count("submits")
        self._count("events", len(events))
        self._count("verdicts", len(records))
        return {"tenant": tenant,
                "verdicts": [record.to_dict() for record in records],
                "shard_batches": {str(shard): count for shard, count
                                  in sorted(routed.items())}}

    # -- transports ------------------------------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One TCP client: request lines in, response lines out."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                response = await self.handle_line(text)
                writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Server teardown cancels in-flight connection tasks mid
                # wait_closed; the transport is gone either way.
                pass

    async def start_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> asyncio.AbstractServer:
        """Bind the TCP transport (port 0 = ephemeral, for tests)."""
        return await asyncio.start_server(self.handle_connection,
                                          host=host, port=port)

    async def process_lines(self, lines: Iterable[str]) -> List[str]:
        """The stdio transport: fold request lines into response lines."""
        responses: List[str] = []
        for line in lines:
            text = line.strip()
            if not text:
                continue
            responses.append(await self.handle_line(text))
        return responses
