"""In-process execution backend: routed, deterministic verdict batches.

:class:`ShardedBackend` is the serving twin of the offline
:class:`~repro.fleet.service.FleetService` round executor. It reuses the
exact same worker runtime — :func:`~repro.fleet.service.
initialize_fleet_worker` fixtures, :func:`~repro.fleet.service.
execute_fleet_batch` per endpoint batch — so a verdict served online is
byte-for-byte the record the offline fleet would have produced for the
same events (proven in ``tests/serve/test_server.py``). Submitted
batches group per endpoint in first-arrival order (the admission
grouping rule) and route to shards with :func:`~repro.fleet.shard.
shard_of`; per-shard batch counts come back with every submission so
the server's ``shard.*`` telemetry reflects real routing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.database import DeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..parallel.factories import FactorySpec
from ..parallel.shared import database_fingerprint
from ..parallel.template import DeltaMode
from ..telemetry.metrics import TELEMETRY
from ..fleet.endpoint import EventRecord
from ..fleet.events import FleetEvent, WorkloadProfile
from ..fleet.service import (DEFAULT_FLEET_FACTORY, _group_round,
                             execute_fleet_batch, initialize_fleet_worker)
from ..fleet.shard import BatchJob, shard_of


class ShardedBackend:
    """Executes admitted event batches against per-endpoint machines.

    Fixture setup (database snapshot, machine template) is lazy and
    happens once, on the first submission — the resident-service shape.
    Execution is synchronous and single-threaded; concurrency control
    (one submission at a time) belongs to the server's event loop.
    """

    def __init__(self, machine_factory: FactorySpec = DEFAULT_FLEET_FACTORY,
                 *, shards: int = 1,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 profile: Optional[WorkloadProfile] = None,
                 template: bool = True,
                 delta: DeltaMode = True,
                 max_retries: int = 1) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.machine_factory = machine_factory
        self.shards = shards
        self.database = database
        self.config = config
        self.profile = profile
        self.template = template
        self.delta = delta
        self.max_retries = max_retries
        self.batches_executed = 0
        self.events_executed = 0
        #: Batches executed per shard index (routing observability).
        self.shard_batches: Dict[int, int] = {}
        #: Published version currently served (0 = the unversioned base
        #: the backend was constructed with; hot rollouts bump this).
        self.database_version = 0
        #: Hot rollouts adopted over this backend's lifetime.
        self.rollouts = 0
        #: Content fingerprint of the serving snapshot (set on first use).
        self.database_fingerprint = ""
        self._ready = False
        self._next_index = 0

    def _ensure_ready(self) -> None:
        if self._ready:
            return
        database = self.database if self.database is not None \
            else DeceptionDatabase()
        blob = database.snapshot_bytes()
        self.database_fingerprint = database_fingerprint(blob)
        initialize_fleet_worker(
            self.machine_factory, blob, self.config,
            telemetry=TELEMETRY.enabled, template=self.template,
            profile=self.profile, delta=self.delta)
        self._ready = True

    def adopt_version(self, version_id: int,
                      database: DeceptionDatabase) -> None:
        """Hot-swap the serving database to a published version.

        The next submission lazily re-initializes the worker fixtures
        with the adopted snapshot as the *base* database — no restart,
        no in-flight work (the server serializes submissions). Jobs are
        stamped with the version id, so every verdict served afterwards
        carries it; the worker resolves the id to its base database
        (no side-loaded blob needed — the base IS the version).
        """
        if version_id < 0:
            raise ValueError("version_id must be >= 0")
        self.database = database
        self.database_version = version_id
        self.rollouts += 1
        self._ready = False

    def submit(self, events: Sequence[FleetEvent]
               ) -> Tuple[List[EventRecord], Dict[int, int]]:
        """Execute one admitted batch; returns (records, shard→batches).

        Events group per endpoint in first-arrival order — each
        endpoint's slice runs on one freshly-stamped machine, exactly
        like one offline admission round — and records come back
        seq-sorted.
        """
        self._ensure_ready()
        routed: Dict[int, int] = {}
        records: List[EventRecord] = []
        for endpoint_id, batch_events in _group_round(list(events)):
            shard = shard_of(endpoint_id, self.shards)
            routed[shard] = routed.get(shard, 0) + 1
            job = BatchJob(self._next_index, endpoint_id, batch_events,
                           self.max_retries,
                           db_version=self.database_version)
            self._next_index += 1
            result = execute_fleet_batch(job)
            records.extend(result.records)
            self.batches_executed += 1
            self.events_executed += len(result.records)
        for shard, count in routed.items():
            self.shard_batches[shard] = \
                self.shard_batches.get(shard, 0) + count
        records.sort(key=lambda record: record.seq)
        return records, routed
