"""Line-delimited JSON-RPC protocol of ``repro serve``.

One request per line, one response per line, both canonical sorted-key
JSON. Requests follow the JSON-RPC 2.0 shape (``id``, ``method``,
``params``); responses carry either ``result`` or ``error`` with the
standard error codes plus one service-specific code:

==================  ======  ==============================================
name                code    meaning
==================  ======  ==============================================
ERROR_PARSE         -32700  the line is not valid JSON
ERROR_INVALID_REQ   -32600  valid JSON but not a request object
ERROR_METHOD        -32601  unknown method
ERROR_INVALID_PAR   -32602  malformed params (bad event fields, ...)
ERROR_OVERLOADED    -32003  tenant admission queue full — retry later
==================  ======  ==============================================

``ERROR_OVERLOADED`` is the backpressure signal: it is an *explicit,
counted* rejection (``serve.rejections``), never a silent drop — the
client owns the retry policy.

Methods: ``submit`` (``{"tenant": str, "events": [...]}`` → verdict
batch), ``stats`` (admission/serving counters), ``ping``. Events and
verdicts are the fleet's wire shapes — :func:`event_from_dict` mirrors
:class:`~repro.fleet.events.FleetEvent`, verdicts are
:meth:`~repro.fleet.endpoint.EventRecord.to_dict` objects.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping, Optional, Tuple

from ..fleet.events import EVENT_KINDS, FleetEvent

#: Wire-format version, echoed by ``ping`` and ``stats``.
PROTOCOL_VERSION = 1

ERROR_PARSE = -32700
ERROR_INVALID_REQUEST = -32600
ERROR_METHOD_NOT_FOUND = -32601
ERROR_INVALID_PARAMS = -32602
#: Per-tenant admission queue full; the batch was rejected, not queued.
ERROR_OVERLOADED = -32003

#: Methods the server dispatches. The ``dbops.*`` pair drives hot
#: deception-database rollouts against a running server (see
#: ``docs/DBOPS.md``): ``dbops.rollout`` adopts a published version
#: from a :class:`~repro.dbops.versions.VersionStore` on disk,
#: ``dbops.status`` reports what is being served.
METHODS = ("ping", "stats", "submit", "dbops.rollout", "dbops.status")


class ProtocolError(ValueError):
    """A request violates the wire protocol; carries the JSON-RPC code."""

    def __init__(self, code: int, message: str,
                 request_id: Optional[Any] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One parsed request line."""

    id: Any
    method: str
    params: Mapping[str, Any]


def parse_request(line: str) -> ServeRequest:
    """Parse and validate one request line."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(ERROR_PARSE,
                            f"not valid JSON: {exc.msg}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(ERROR_INVALID_REQUEST,
                            "request is not an object")
    request_id = payload.get("id")
    method = payload.get("method")
    if not isinstance(method, str):
        raise ProtocolError(ERROR_INVALID_REQUEST, "missing method",
                            request_id)
    if method not in METHODS:
        raise ProtocolError(ERROR_METHOD_NOT_FOUND,
                            f"unknown method {method!r}", request_id)
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(ERROR_INVALID_PARAMS, "params is not an object",
                            request_id)
    return ServeRequest(id=request_id, method=method, params=params)


def event_to_dict(event: FleetEvent) -> dict:
    return {"seq": event.seq, "at_ms": event.at_ms,
            "endpoint_id": event.endpoint_id, "kind": event.kind,
            "ref": event.ref}


def event_from_dict(data: Mapping[str, Any],
                    request_id: Optional[Any] = None) -> FleetEvent:
    """Validate one wire event into a :class:`FleetEvent`."""
    if not isinstance(data, Mapping):
        raise ProtocolError(ERROR_INVALID_PARAMS, "event is not an object",
                            request_id)
    try:
        seq = int(data["seq"])
        at_ms = int(data["at_ms"])
        endpoint_id = int(data["endpoint_id"])
        kind = data["kind"]
        ref = int(data["ref"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            ERROR_INVALID_PARAMS,
            f"event missing/malformed field: {exc}", request_id) from exc
    if kind not in EVENT_KINDS:
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"unknown event kind {kind!r}", request_id)
    if endpoint_id < 0:
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            "endpoint_id must be >= 0", request_id)
    return FleetEvent(seq=seq, at_ms=at_ms, endpoint_id=endpoint_id,
                      kind=kind, ref=ref)


def parse_events(params: Mapping[str, Any],
                 request_id: Optional[Any] = None
                 ) -> Tuple[FleetEvent, ...]:
    """The ``events`` list of a ``submit`` request, validated."""
    events = params.get("events")
    if not isinstance(events, list):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            "params.events must be a list", request_id)
    return tuple(event_from_dict(entry, request_id) for entry in events)


def encode_response(request_id: Any, result: Mapping[str, Any]) -> str:
    """One canonical result line."""
    return json.dumps({"id": request_id, "result": dict(result)},
                      sort_keys=True, separators=(",", ":"))


def encode_error(request_id: Any, code: int, message: str) -> str:
    """One canonical error line."""
    return json.dumps(
        {"id": request_id, "error": {"code": code, "message": message}},
        sort_keys=True, separators=(",", ":"))
