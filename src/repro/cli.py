"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1 | table2 | table3 | figure4 | cases | all`` — regenerate the
  paper's tables/figures and print them;
* ``demo <sample>`` — run one named sample with and without Scarecrow on a
  fresh machine and report the verdict
  (samples: wannacry, wannacry-original, locky, cerber, kasidet);
* ``pafish [--env ENV] [--scarecrow]`` — run the Pafish reimplementation
  in one environment and print the triggered checks;
* ``overhead`` — measure the hook-chain overhead (E8);
* ``inventory`` — print the deception database inventory;
* ``sweep [--workers N] [--families F ...] [--limit N] [--factory NAME]``
  — run a corpus sweep on the parallel execution engine and print the
  summary plus per-worker statistics (see docs/PARALLEL.md);
* ``fleet [--endpoints N] [--events N] [--seed S] [--jobs N]
  [--shards N] [--checkpoint FILE] [--resume]`` — run the long-lived
  multi-endpoint protection service over a seeded event stream and
  print the fleet report (see docs/FLEET.md);
* ``serve [--shards N] [--tenant-limit N] [--max-batch N] [--port P]``
  — the asyncio admission front-end over the sharded fleet:
  line-delimited JSON-RPC on stdio (default) or TCP
  (see docs/FLEET.md);
* ``stats FILE`` — summarise a JSONL telemetry trace written by
  ``--telemetry`` (see docs/OBSERVABILITY.md);
* ``lint [PATH ...]`` — run the scarelint static-analysis checkers
  (SC001–SC008, file- and whole-program-scope) and report unbaselined
  findings
  (see docs/STATIC_ANALYSIS.md).

Experiment commands (and ``sweep``) accept ``--telemetry PATH`` to record
counters and latency histograms while they run and export them as JSONL.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

DEMO_SAMPLES: Dict[str, str] = {
    "wannacry": "build_wannacry_variant",
    "wannacry-original": "build_wannacry_original",
    "locky": "build_locky",
    "cerber": "build_cerber_variant",
    "kasidet": "build_kasidet",
}

PAFISH_ENVIRONMENTS = ("bare-metal", "vm", "end-user")


def _cmd_table1(_args: argparse.Namespace) -> int:
    from .experiments import render_table1, run_table1
    print(render_table1(run_table1()))
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    from .experiments import render_table2, run_table2
    print(render_table2(run_table2()))
    return 0


def _cmd_table3(_args: argparse.Namespace) -> int:
    from .experiments import render_table3, run_table3
    print(render_table3(run_table3()))
    return 0


def _cmd_figure4(_args: argparse.Namespace) -> int:
    from .experiments import render_figure4, run_figure4
    print(render_figure4(run_figure4()))
    return 0


def _cmd_cases(_args: argparse.Namespace) -> int:
    from .experiments import (render_case1, render_case2, run_case1,
                              run_case2)
    print(render_case1(run_case1()))
    print()
    print(render_case2(run_case2()))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for command in (_cmd_table1, _cmd_figure4, _cmd_table2, _cmd_table3,
                    _cmd_cases):
        command(args)
        print()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import malware
    from .analysis.environments import build_end_user_machine
    from .experiments.runner import run_pair
    builder = getattr(malware, DEMO_SAMPLES[args.sample])
    sample = builder()

    def factory():
        machine = build_end_user_machine()
        machine.filesystem.write_file(
            "C:\\Users\\john\\Documents\\valuable.docx", b"data")
        return machine

    outcome = run_pair(sample, machine_factory=factory)
    without = outcome.without.result
    with_sc = outcome.with_scarecrow.result
    print(f"sample {sample.md5} ({sample.family})")
    print(f"  without Scarecrow: payload ran = {without.executed_payload}")
    if without.payload_outcome:
        print(f"    behaviour: {without.payload_outcome.description}")
    print(f"  with Scarecrow:    payload ran = {with_sc.executed_payload}"
          f" (trigger: {with_sc.trigger})")
    print(f"  verdict: {outcome.comparison.verdict.value}")
    return 0 if outcome.comparison.deactivated or not sample.check_names \
        else 1


def _cmd_pafish(args: argparse.Namespace) -> int:
    from . import winapi
    from .analysis.environments import (build_bare_metal_sandbox,
                                        build_cuckoo_vm_sandbox,
                                        build_end_user_machine)
    from .core import ScarecrowConfig, ScarecrowController
    from .fingerprint.pafish import run_pafish
    builders = {"bare-metal": build_bare_metal_sandbox,
                "vm": lambda: build_cuckoo_vm_sandbox(
                    transparent=args.scarecrow),
                "end-user": build_end_user_machine}
    machine = builders[args.env]()
    if args.scarecrow:
        config = ScarecrowConfig(
            enable_username=(args.env != "end-user"))
        controller = ScarecrowController(machine, config=config)
        process = controller.launch("C:\\analysis\\pafish.exe")
    else:
        process = machine.spawn_process("pafish.exe",
                                        "C:\\analysis\\pafish.exe",
                                        parent=machine.explorer)
    report = run_pafish(winapi.bind(machine, process))
    print(f"environment: {args.env}  scarecrow: {args.scarecrow}")
    print(f"triggered {report.total_triggered()}/56 checks:")
    for name in report.triggered():
        print(f"  [traced] {name}")
    for category, count in report.category_counts().items():
        print(f"  {category}: {count}")
    return 0


def _cmd_overhead(_args: argparse.Namespace) -> int:
    from .experiments import render_overhead, run_overhead
    print(render_overhead(run_overhead()))
    return 0


def _cmd_inventory(_args: argparse.Namespace) -> int:
    from .core import DeceptionDatabase
    from .core.handlers import CORE_29_APIS, DECOY_APIS
    db = DeceptionDatabase()
    print("deception database inventory (curated):")
    for kind, count in sorted(db.counts().items()):
        print(f"  {kind}: {count}")
    print(f"hooked resource APIs: {len(CORE_29_APIS)}")
    print(f"decoy hooks: {len(DECOY_APIS)}")
    print(f"fake hardware: disk={db.hardware.disk_total_bytes >> 30}GB "
          f"ram={db.hardware.ram_total_bytes >> 20}MB "
          f"cores={db.hardware.cpu_cores}")
    print(f"NX-domain sinkhole: {db.network.sinkhole_ip}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.comparison import summarize
    from .malware.corpus import build_malgene_corpus
    from .malware.families import all_family_specs
    from .parallel import ParallelSweep, resolve_machine_factory

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.limit < 0:
        print("--limit must be >= 0", file=sys.stderr)
        return 2
    if args.chunksize is not None and args.chunksize < 1:
        print("--chunksize must be >= 1", file=sys.stderr)
        return 2
    if args.no_template and args.verify_template:
        print("--no-template and --verify-template are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.no_delta and args.verify_delta:
        print("--no-delta and --verify-delta are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        resolve_machine_factory(args.factory)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    specs = all_family_specs()
    if args.families:
        wanted = {name.lower() for name in args.families}
        specs = [s for s in specs if s.name.lower() in wanted]
        missing = wanted - {s.name.lower() for s in specs}
        if missing:
            print(f"unknown families: {', '.join(sorted(missing))}",
                  file=sys.stderr)
            return 2
    samples = build_malgene_corpus(specs)
    if args.limit:
        samples = samples[:args.limit]

    template = "verify" if args.verify_template else not args.no_template
    delta = "verify" if args.verify_delta else not args.no_delta
    sweep = ParallelSweep(max_workers=args.workers,
                          machine_factory=args.factory,
                          template=template, chunksize=args.chunksize,
                          delta=delta)
    result = sweep.run(samples)
    summary = summarize(result.comparisons)

    mode = "process pool" if result.used_process_pool else "in-process"
    template_label = {True: "on", False: "off"}.get(template, template)
    delta_label = {True: "on", False: "off"}.get(delta, delta)
    shared_label = "yes" if result.shared_state_used else "no"
    print(f"sweep: {len(samples)} samples, {args.workers} worker(s) "
          f"({mode}), factory={args.factory}, template={template_label}, "
          f"delta={delta_label}, shared-state={shared_label}")
    print(f"  wall time: {result.wall_time_s:.2f}s"
          f"  retries: {result.total_retries()}")
    print(f"  deactivated: {summary.deactivated}/{summary.total} "
          f"({summary.deactivation_rate:.1%})")
    print(f"  self-spawning: {summary.self_spawning} "
          f"(IsDebuggerPresent: {summary.self_spawning_using_idp})")
    print(f"  inconclusive: {summary.inconclusive}"
          f"  not deactivated: {summary.not_deactivated}")
    workers_used = sorted({s.worker_pid for s in result.stats})
    print(f"  worker pids: {len(workers_used)} distinct")
    for error in result.errors:
        print(f"  ERROR {error.sample_md5}: {error.error_type}: "
              f"{error.message} (after {error.retry_count} retries)",
              file=sys.stderr)
    _stash_sweep_telemetry(args, result)
    return 1 if result.errors else 0


def _stash_sweep_telemetry(args: argparse.Namespace, result) -> None:
    """Queue sweep-level records for :func:`main`'s ``--telemetry`` writer.

    The merged envelope metrics already contain every job's activity, so
    the writer skips its own registry-delta record when it finds a
    ``metrics`` record here (avoiding double counting on the serial path,
    where workers share the parent registry).
    """
    records = getattr(args, "_telemetry_records", None)
    if records is None:
        return
    from .parallel import PairEnvelope
    from .telemetry import export
    merged = result.merged_metrics()
    if merged is not None:
        records.append(export.metrics_record(merged, scope="sweep"))
    for entry in result.entries:
        if isinstance(entry, PairEnvelope):
            records.append(export.sample_record(
                entry.stats,
                verdict=entry.outcome.comparison.verdict.value))
        else:
            records.append(export.error_record(entry))


def _cmd_fleet(args: argparse.Namespace) -> int:
    # Wall-time lives out here in the CLI: repro.fleet itself is a
    # scarelint deterministic zone and never reads the host clock.
    import time

    from .fleet import (FleetCheckpointError, FleetService,
                        build_fleet_report, render_fleet_report)
    from .parallel import resolve_machine_factory

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint FILE", file=sys.stderr)
        return 2
    if args.no_delta and args.verify_delta:
        print("--no-delta and --verify-delta are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        resolve_machine_factory(args.factory)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    delta = "verify" if args.verify_delta else not args.no_delta
    try:
        service = FleetService(
            endpoints=args.endpoints, events=args.events, seed=args.seed,
            machine_factory=args.factory, max_workers=args.jobs,
            shards=args.shards,
            queue_limit=args.queue_limit, chunksize=args.chunksize,
            template=not args.no_template, delta=delta,
            checkpoint_path=args.checkpoint,
            resume=args.resume)
    except ValueError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    start_ns = time.perf_counter_ns()
    try:
        result = service.run(stop_after_rounds=args.stop_after)
    except FleetCheckpointError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    elapsed_ns = max(1, time.perf_counter_ns() - start_ns)
    report = build_fleet_report(result)
    print(render_fleet_report(report, result))
    executed = len(result.records) - result.events_resumed
    print(f"wall time: {elapsed_ns / 1e9:.2f}s  "
          f"events/sec: {executed / (elapsed_ns / 1e9):.1f}")
    if not result.completed:
        print(f"stopped after {result.rounds_done}/{result.rounds_total} "
              f"rounds (checkpoint: {args.checkpoint or 'none'})")
    _stash_fleet_telemetry(args, result, elapsed_ns)
    return 0 if result.completed else 1


def _stash_fleet_telemetry(args: argparse.Namespace, result,
                           elapsed_ns: int) -> None:
    """Queue the fleet run's merged metrics for the ``--telemetry`` writer.

    Adds the one host-clock number the deterministic service cannot
    record itself — run wall time, under ``wallclock.fleet.run_ns`` — so
    ``repro stats`` can derive events/sec.
    """
    records = getattr(args, "_telemetry_records", None)
    if records is None:
        return
    from .telemetry import export
    from .telemetry.metrics import MetricsRegistry
    scratch = MetricsRegistry(enabled=True)
    scratch.observe(export.FLEET_RUN_WALLCLOCK, elapsed_ns)
    merged = result.merged_metrics().merge(scratch.snapshot())
    records.append(export.metrics_record(merged, scope="fleet"))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Asyncio admission front-end over stdio or TCP (docs/FLEET.md)."""
    import asyncio

    from .parallel import resolve_machine_factory
    from .serve import FleetServer, ServeConfig
    try:
        resolve_machine_factory(args.factory)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        config = ServeConfig(machine_factory=args.factory,
                             shards=args.shards,
                             tenant_limit=args.tenant_limit,
                             max_batch=args.max_batch)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    server = FleetServer(config)
    if args.port is None:
        # stdio transport: request lines on stdin, responses on stdout.
        lines = sys.stdin.read().splitlines()
        for response in asyncio.run(server.process_lines(lines)):
            print(response)
        summary = server.counters
        print(f"serve: {summary['requests']} request(s), "
              f"{summary['verdicts']} verdict(s), "
              f"{summary['rejections']} rejection(s)", file=sys.stderr)
        return 0

    async def _serve_tcp() -> None:
        tcp = await server.start_tcp(args.host, args.port)
        address = tcp.sockets[0].getsockname()
        print(f"serve: listening on {address[0]}:{address[1]} "
              f"({config.shards} shard(s), tenant limit "
              f"{config.tenant_limit})", file=sys.stderr)
        async with tcp:
            await tcp.serve_forever()

    try:
        asyncio.run(_serve_tcp())
    except KeyboardInterrupt:
        print("serve: interrupted", file=sys.stderr)
    return 0


def _parse_ramp_stages(raw_stages):
    """``--stage ROUND:PERCENT`` pairs → RampStage tuple (or None)."""
    from .dbops import RampStage
    if not raw_stages:
        return None
    stages = []
    for raw in raw_stages:
        try:
            at_round, _, percent = raw.partition(":")
            stages.append(RampStage(at_round=int(at_round),
                                    percent=int(percent)))
        except ValueError as exc:
            raise ValueError(f"bad --stage {raw!r} (want ROUND:PERCENT): "
                             f"{exc}") from exc
    return tuple(stages)


def _cmd_dbops(args: argparse.Namespace) -> int:
    from .dbops import VersionStore, VersionStoreError
    try:
        if args.dbops_command == "collect":
            return _dbops_collect(args)
        if args.dbops_command == "versions":
            store = VersionStore(args.store)
            versions = store.versions()
            if not versions:
                print(f"store {args.store}: no published versions")
                return 0
            print(f"store {args.store}: {len(versions)} version(s)")
            for version in versions:
                changelog = " ".join(
                    f"{kind}+{count}" for kind, count in version.changelog
                    if count) or "(no changelog)"
                print(f"  v{version.version_id} <- v{version.parent_id}  "
                      f"{version.fingerprint}  {version.label or '-'}  "
                      f"t+{version.created_at_ms}ms  {changelog}")
            return 0
        return _dbops_rollout(args)
    except VersionStoreError as exc:
        print(f"dbops: {exc}", file=sys.stderr)
        return 2


def _dbops_collect(args: argparse.Namespace) -> int:
    from .dbops import CollectorPipeline, VersionStore
    if args.cycles < 1:
        print("--cycles must be >= 1", file=sys.stderr)
        return 2
    store = VersionStore(args.store)
    try:
        pipeline = CollectorPipeline(
            store, seed=args.seed, machines=args.machines,
            cycle_ms=args.cycle_ms)
    except (ValueError, KeyError) as exc:
        print(f"dbops: {exc}", file=sys.stderr)
        return 2
    published = 0
    for result in pipeline.run(args.cycles):
        if result.published is None:
            print(f"cycle {result.cycle}: skipped ({result.skipped_reason})")
            continue
        published += 1
        counts = dict(result.counts)
        print(f"cycle {result.cycle}: published v"
              f"{result.published.version_id} "
              f"(+{counts.get('files', 0)} files, "
              f"+{counts.get('processes', 0)} processes, "
              f"+{counts.get('registry_entries', 0)} registry entries)")
    latest = store.latest()
    print(f"published {published}/{args.cycles} cycle(s); store "
          f"{args.store} now at "
          f"{'v' + str(latest.version_id) if latest else 'base'}")
    return 0


def _dbops_rollout(args: argparse.Namespace) -> int:
    # Offline rollout rehearsal: run the fleet with the version router
    # active. The serving path (live hot-swap) is the `dbops.rollout`
    # RPC against `repro serve`.
    import time

    from .dbops import HealthGate, RolloutEngine, VersionStore
    from .fleet import (FleetCheckpointError, FleetService,
                        build_fleet_report, render_fleet_report)

    store = VersionStore(args.store)
    try:
        stages = _parse_ramp_stages(args.stage)
        health = None if args.no_health else HealthGate(
            min_samples=args.min_samples,
            max_regression=args.max_regression)
        if stages is None:
            engine = RolloutEngine.from_store(store, args.version,
                                              health=health)
        else:
            engine = RolloutEngine.from_store(store, args.version,
                                              stages=stages, health=health)
        service = FleetService(
            endpoints=args.endpoints, events=args.events, seed=args.seed,
            machine_factory=args.factory, max_workers=args.jobs,
            shards=args.shards, version_router=engine)
    except ValueError as exc:
        print(f"dbops: {exc}", file=sys.stderr)
        return 2
    start_ns = time.perf_counter_ns()
    try:
        result = service.run()
    except FleetCheckpointError as exc:
        print(f"dbops: {exc}", file=sys.stderr)
        return 2
    elapsed_ns = max(1, time.perf_counter_ns() - start_ns)
    report = build_fleet_report(result)
    print(render_fleet_report(report, result))
    summary = result.dbops or {}
    state = "no-op (target == base)" if summary.get("noop") else (
        "ROLLED BACK on shard(s) " + ", ".join(
            str(shard) for shard, _ in summary.get("rolled_back_shards",
                                                   ()))
        if summary.get("rolled_back") else "healthy")
    print(f"rollout v{args.version}: {state}  "
          f"stamped batches: {summary.get('stamped_batches', 0)}")
    print(f"wall time: {elapsed_ns / 1e9:.2f}s")
    _stash_fleet_telemetry(args, result, elapsed_ns)
    return 0


def _render_latency_rows(title: str, rows) -> List[str]:
    lines = [f"{title}:"]
    if not rows:
        lines.append("  (none)")
        return lines
    width = max(len(row[0]) for row in rows)
    lines.append(f"  {'export'.ljust(width)}  {'calls':>8} {'p50_ns':>10} "
                 f"{'p99_ns':>10} {'mean_ns':>12}")
    for name, calls, p50, p99, mean in rows:
        lines.append(f"  {name.ljust(width)}  {calls:>8} {p50:>10} "
                     f"{p99:>10} {mean:>12.1f}")
    return lines


def _cmd_stats(args: argparse.Namespace) -> int:
    from .telemetry.export import (TelemetryFormatError, read_records,
                                   summarize_records)
    try:
        records = read_records(args.path)
    except OSError as exc:
        print(f"stats: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except TelemetryFormatError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    summary = summarize_records(records)
    print(f"telemetry file: {args.path}")
    counts = " ".join(f"{kind}={count}" for kind, count
                      in sorted(summary.record_counts.items()))
    print(f"records: {counts or '(empty)'}")
    if summary.snapshot.counters:
        print("counters:")
        for name, value in sorted(summary.snapshot.counters.items()):
            print(f"  {name}: {value}")
    if summary.snapshot.gauges:
        print("gauges:")
        for name, value in sorted(summary.snapshot.gauges.items()):
            print(f"  {name}: {value}")
    for line in _render_latency_rows("api latency (virtual ns)",
                                     summary.api_rows):
        print(line)
    for line in _render_latency_rows("hook handlers (virtual ns)",
                                     summary.hook_rows):
        print(line)
    if summary.wallclock_rows:
        # Host-time phase split: machine_setup_ns vs job_ns shows what
        # machine templating saves per job (docs/PARALLEL.md).
        for line in _render_latency_rows("wallclock phases (host ns)",
                                         summary.wallclock_rows):
            print(line)
    if summary.event_categories:
        print("events by category: " + " ".join(
            f"{category}={count}" for category, count
            in sorted(summary.event_categories.items())))
    if summary.fleet is not None:
        _print_fleet_health(summary.fleet)
    if summary.serve is not None:
        _print_serve_health(summary.serve)
    if summary.dbops is not None:
        _print_dbops_health(summary.dbops)
    print(f"samples: {summary.samples}  errors: {summary.errors}")
    return 0


def _print_fleet_health(fleet) -> None:
    """The fleet-service section of ``repro stats`` (docs/FLEET.md)."""
    print("fleet health:")
    rate = f"{fleet.events_per_sec:.1f}/s" \
        if fleet.events_per_sec is not None else "n/a"
    print(f"  events: {fleet.events}  throughput: {rate}  "
          f"errors: {fleet.event_errors}  retries: {fleet.retries}")
    print(f"  deactivated: {fleet.deactivated}  benign ok: "
          f"{fleet.benign_ok}  resets: {fleet.resets}")
    print(f"  queue depth hwm: {fleet.queue_depth_hwm}  stalls: "
          f"{fleet.backpressure_stalls}  degraded chunks: "
          f"{fleet.degraded_chunks}")
    print(f"  event latency (virtual): p50 {fleet.latency_p50_ns} ns  "
          f"p99 {fleet.latency_p99_ns} ns  (n={fleet.latency_count})")
    for family, arrivals, deactivated, family_rate in fleet.family_rows:
        print(f"  family {family}: {deactivated}/{arrivals} deactivated "
              f"({family_rate:.1%})")
    if fleet.shards:
        print(f"  shards: {fleet.shards}  shard rounds: "
              f"{fleet.shard_rounds}  resumed: {fleet.shard_rounds_resumed}")


def _print_serve_health(serve) -> None:
    """The admission front-end section of ``repro stats``."""
    print("serve health:")
    print(f"  requests: {serve.requests}  submits: {serve.submits}  "
          f"errors: {serve.errors}")
    print(f"  events admitted: {serve.events}  verdicts: {serve.verdicts}  "
          f"overload rejections: {serve.rejections}")


def _print_dbops_health(dbops) -> None:
    """The deception-DB operations section of ``repro stats``."""
    print("dbops health:")
    if dbops.cycles:
        print(f"  collection cycles: {dbops.cycles}  published: "
              f"{dbops.published}  skipped: {dbops.skipped_cycles}  "
              f"resources added: {dbops.resources_added}")
    if dbops.target_version or dbops.stamped_batches or dbops.rollbacks:
        print(f"  rollout target: v{dbops.target_version}  stamped "
              f"batches: {dbops.stamped_batches}  rollbacks: "
              f"{dbops.rollbacks}")


def _parse_rules(raw: str) -> tuple:
    return tuple(sorted({part.strip().upper()
                         for part in raw.split(",") if part.strip()}))


def _cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck import (load_or_empty, render_human, render_json,
                              run_lint, write_baseline)
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    select = _parse_rules(args.select)
    ignore = _parse_rules(args.ignore)
    baseline = load_or_empty(args.baseline) if not args.no_baseline \
        else None
    report = run_lint(args.paths, jobs=args.jobs, baseline=baseline,
                      select=select, ignore=ignore,
                      changed_base=args.changed)
    if args.write_baseline:
        if select or ignore or args.changed is not None:
            print("lint: --write-baseline needs a full scan "
                  "(no --select/--ignore/--changed)", file=sys.stderr)
            return 2
        written = write_baseline(report.findings, args.baseline,
                                 suppressed=report.suppressed,
                                 reason=args.reason)
        pruned = len(report.stale_suppressions)
        print(f"lint: wrote {len(written)} suppression(s) to "
              f"{args.baseline} (pruned {pruned} dead "
              f"entr{'y' if pruned == 1 else 'ies'})", file=sys.stderr)
        return 0
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_human(report))
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scarecrow (DSN 2020) reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
            ("table1", "Table I: 13 Joe Security samples"),
            ("table2", "Table II: Pafish across environments"),
            ("table3", "Table III: wear-and-tear artifacts"),
            ("figure4", "Figure 4: the 1,054-sample corpus (slow)"),
            ("cases", "Section V case studies"),
            ("all", "everything above"),
            ("overhead", "hook-chain overhead measurement"),
            ("inventory", "deception database inventory")):
        sub = subparsers.add_parser(name, help=help_text)
        if name != "inventory":
            _add_telemetry_option(sub)
    demo = subparsers.add_parser("demo",
                                 help="run one sample w/ and w/o Scarecrow")
    demo.add_argument("sample", choices=sorted(DEMO_SAMPLES))
    pafish = subparsers.add_parser("pafish", help="run Pafish")
    pafish.add_argument("--env", choices=PAFISH_ENVIRONMENTS,
                        default="end-user")
    pafish.add_argument("--scarecrow", action="store_true")
    sweep = subparsers.add_parser(
        "sweep", help="parallel corpus sweep (docs/PARALLEL.md)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = in-process)")
    sweep.add_argument("--families", nargs="+", metavar="FAMILY",
                       help="restrict the corpus to these families")
    sweep.add_argument("--limit", type=int, default=0,
                       help="cap the number of samples (0 = no cap)")
    sweep.add_argument("--factory", default="bare-metal-light",
                       help="machine factory name "
                            "(see repro.parallel.available_factories)")
    sweep.add_argument("--no-template", action="store_true",
                       help="rebuild the machine from the factory for "
                            "every run instead of snapshot/restore reuse")
    sweep.add_argument("--verify-template", action="store_true",
                       help="re-run every sample on a fresh machine and "
                            "fail on any divergence from the templated run")
    sweep.add_argument("--no-delta", action="store_true",
                       help="full template restore between jobs instead of "
                            "dirty-set delta restore")
    sweep.add_argument("--verify-delta", action="store_true",
                       help="delta-restore and prove every skipped "
                            "subsystem still matches the template")
    sweep.add_argument("--chunksize", type=int, default=None,
                       help="jobs per pool submission (default: auto)")
    _add_telemetry_option(sweep)
    fleet = subparsers.add_parser(
        "fleet", help="multi-endpoint protection service (docs/FLEET.md)")
    fleet.add_argument("--endpoints", type=int, default=8,
                       help="protected endpoints in the fleet")
    fleet.add_argument("--events", type=int, default=64,
                       help="events in the generated stream")
    fleet.add_argument("--seed", type=int, default=42,
                       help="workload seed (same seed = same stream)")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
    fleet.add_argument("--shards", type=int, default=1,
                       help="independent fleet shards dispatched "
                            "concurrently (endpoint_id %% shards routing; "
                            "same rollup bytes at any count)")
    fleet.add_argument("--factory", default="end-user",
                       help="machine factory endpoints are stamped from")
    fleet.add_argument("--queue-limit", type=int, default=32,
                       help="admission-queue bound (backpressure)")
    fleet.add_argument("--chunksize", type=int, default=None,
                       help="batches per pool submission (default: auto)")
    fleet.add_argument("--no-template", action="store_true",
                       help="rebuild each endpoint machine from the "
                            "factory instead of snapshot/restore reuse")
    fleet.add_argument("--no-delta", action="store_true",
                       help="full template restore between batches instead "
                            "of dirty-set delta restore")
    fleet.add_argument("--verify-delta", action="store_true",
                       help="delta-restore and prove every skipped "
                            "subsystem still matches the template")
    fleet.add_argument("--checkpoint", metavar="FILE", default=None,
                       help="write a resumable checkpoint after each round")
    fleet.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint FILE if it exists")
    fleet.add_argument("--stop-after", type=int, default=None,
                       metavar="ROUNDS",
                       help="stop after this many new rounds (simulates a "
                            "killed service; exit code 1)")
    _add_telemetry_option(fleet)
    serve = subparsers.add_parser(
        "serve", help="asyncio admission front-end for the sharded fleet "
                      "(line-delimited JSON-RPC; docs/FLEET.md)")
    serve.add_argument("--factory", default="end-user",
                       help="machine factory endpoints are stamped from")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard count for endpoint routing")
    serve.add_argument("--tenant-limit", type=int, default=256,
                       help="max pending events per tenant (overload "
                            "beyond this is rejected, not queued)")
    serve.add_argument("--max-batch", type=int, default=128,
                       help="max events per submit request")
    serve.add_argument("--port", type=int, default=None, metavar="PORT",
                       help="listen on TCP PORT (0 = ephemeral); "
                            "default: stdio one-shot mode")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (with --port)")
    _add_telemetry_option(serve)
    dbops = subparsers.add_parser(
        "dbops", help="deception-DB versioning: collect, inspect, roll "
                      "out (docs/DBOPS.md)")
    dbops_sub = dbops.add_subparsers(dest="dbops_command", required=True)
    collect = dbops_sub.add_parser(
        "collect", help="run collection cycles against simulated "
                        "sandboxes, publishing a version per fresh diff")
    collect.add_argument("--store", required=True, metavar="DIR",
                         help="version-store directory (created if absent)")
    collect.add_argument("--cycles", type=int, default=4,
                         help="collection cycles to run")
    collect.add_argument("--seed", type=int, default=2026,
                         help="sandbox-drift seed (same seed = same "
                              "versions)")
    collect.add_argument("--machines", type=int, default=2,
                         help="simulated public sandboxes to crawl")
    collect.add_argument("--cycle-ms", type=int, default=60_000,
                         help="virtual milliseconds per cycle")
    _add_telemetry_option(collect)
    versions = dbops_sub.add_parser(
        "versions", help="list the published versions in a store")
    versions.add_argument("--store", required=True, metavar="DIR",
                          help="version-store directory")
    rollout = dbops_sub.add_parser(
        "rollout", help="fleet run with a staged, health-gated version "
                        "rollout (offline rehearsal; live serving uses "
                        "the dbops.rollout RPC)")
    rollout.add_argument("--store", required=True, metavar="DIR",
                         help="version-store directory")
    rollout.add_argument("--version", type=int, required=True,
                         help="published version id to roll out")
    rollout.add_argument("--endpoints", type=int, default=8,
                         help="protected endpoints in the fleet")
    rollout.add_argument("--events", type=int, default=64,
                         help="events in the generated stream")
    rollout.add_argument("--seed", type=int, default=42,
                         help="workload seed")
    rollout.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = in-process)")
    rollout.add_argument("--shards", type=int, default=1,
                         help="fleet shards (rollback is evaluated "
                              "per shard)")
    rollout.add_argument("--factory", default="end-user",
                         help="machine factory endpoints are stamped from")
    rollout.add_argument("--stage", action="append", default=None,
                         metavar="ROUND:PERCENT",
                         help="ramp stage (repeatable; default 0:100)")
    rollout.add_argument("--min-samples", type=int, default=8,
                         help="malware arrivals per cohort before the "
                              "health gate may trigger")
    rollout.add_argument("--max-regression", type=float, default=0.15,
                         help="deactivation-rate drop that triggers "
                              "auto-rollback")
    rollout.add_argument("--no-health", action="store_true",
                         help="disable the auto-rollback health gate")
    _add_telemetry_option(rollout)
    stats = subparsers.add_parser(
        "stats", help="summarise a --telemetry JSONL trace")
    stats.add_argument("path", metavar="PATH",
                       help="telemetry file written by --telemetry")
    lint = subparsers.add_parser(
        "lint", help="scarelint static analysis (docs/STATIC_ANALYSIS.md)")
    lint.add_argument("paths", nargs="*", metavar="PATH", default=["src"],
                      help="files/directories to lint (default: src)")
    lint.add_argument("--format", choices=("human", "json"),
                      default="human", help="output format")
    lint.add_argument("--baseline", default=".scarelint-baseline.json",
                      metavar="FILE",
                      help="baseline of grandfathered findings")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring the baseline")
    lint.add_argument("--write-baseline", action="store_true",
                      help="regenerate the baseline from current findings")
    lint.add_argument("--reason", default="",
                      help="reason recorded with --write-baseline entries")
    lint.add_argument("--jobs", type=int, default=1,
                      help="parallel lint workers (1 = in-process)")
    lint.add_argument("--select", default="", metavar="RULE,RULE",
                      help="run only these rule ids (e.g. SC006,SC008)")
    lint.add_argument("--ignore", default="", metavar="RULE,RULE",
                      help="skip these rule ids")
    lint.add_argument("--changed", nargs="?", const="main", default=None,
                      metavar="REF",
                      help="lint only files differing from "
                           "`git merge-base HEAD REF` (default REF: main) "
                           "plus untracked files")
    _add_telemetry_option(lint)
    return parser


def _add_telemetry_option(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--telemetry", metavar="PATH", default=None,
                     help="record metrics while the command runs and "
                          "write them to PATH as JSONL (summarise with "
                          "'repro stats PATH'; docs/OBSERVABILITY.md)")


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "table1": _cmd_table1, "table2": _cmd_table2, "table3": _cmd_table3,
    "figure4": _cmd_figure4, "cases": _cmd_cases, "all": _cmd_all,
    "demo": _cmd_demo, "pafish": _cmd_pafish, "inventory": _cmd_inventory,
    "overhead": _cmd_overhead, "sweep": _cmd_sweep, "fleet": _cmd_fleet,
    "serve": _cmd_serve, "stats": _cmd_stats, "lint": _cmd_lint,
    "dbops": _cmd_dbops,
}


def _run_with_telemetry(args: argparse.Namespace, path: str) -> int:
    """Run a command with the telemetry layer enabled; export to JSONL."""
    from .telemetry import export
    from .telemetry.metrics import TELEMETRY
    args._telemetry_records = []
    prior_enabled = TELEMETRY.enabled
    TELEMETRY.enabled = True
    before = TELEMETRY.snapshot()
    try:
        code = _COMMANDS[args.command](args)
    finally:
        TELEMETRY.enabled = prior_enabled
    stashed = list(args._telemetry_records)
    records = [export.meta_record(command=args.command, exit_code=code)]
    if not any(record.get("type") == "metrics" for record in stashed):
        delta = TELEMETRY.snapshot().diff_from(before)
        records.append(export.metrics_record(delta, scope="process"))
    records.extend(stashed)
    written = export.write_records(path, records)
    print(f"telemetry: wrote {written} record(s) to {path}",
          file=sys.stderr)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path:
        return _run_with_telemetry(args, telemetry_path)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
