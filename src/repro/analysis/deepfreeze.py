"""Deep Freeze substitute: snapshot a machine, reset it between runs.

"each of which is reset to the clean state via Deep Freeze before the
execution of a malware sample" — the experiment loop freezes the
provisioned machine once, then thaws it back to that state (including a
fresh boot-time process tree) before every sample.
"""

from __future__ import annotations

from typing import Optional

from ..winsim.errors import SnapshotError
from ..winsim.machine import Machine


class DeepFreeze:
    """Snapshot/restore wrapper for one machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._frozen_state: Optional[dict] = None
        self.reset_count = 0

    def freeze(self) -> None:
        """Capture the current machine state as the clean baseline."""
        self._frozen_state = self.machine.snapshot()

    @property
    def frozen(self) -> bool:
        return self._frozen_state is not None

    def reset(self) -> Machine:
        """Roll the machine back to the frozen state and reboot processes."""
        if self._frozen_state is None:
            raise SnapshotError("freeze() must be called before reset()")
        self.machine.restore(self._frozen_state)
        self.machine.reset_processes()
        self.reset_count += 1
        return self.machine
