"""Analysis machinery: environments, tracing, comparison, orchestration."""

from .agent import (Agent, ExperimentCluster, Job, MachineFactory, Proxy,
                    RunRecord, run_sample)
from .comparison import (ComparisonResult, CorpusSummary, FamilyBreakdown,
                         SELF_SPAWN_LOOP_THRESHOLD, Verdict,
                         aggregate_by_family, compare_runs, summarize)
from .deepfreeze import DeepFreeze
from .environments import (PUBLIC_SANDBOX_VOLUMES, build_bare_metal_sandbox,
                           build_clean_baseline, build_cuckoo_vm_sandbox,
                           build_end_user_machine, build_public_sandbox,
                           build_public_sandboxes)
from .malgene import (EvasionSignature, align_traces,
                      extract_evasion_signature, first_divergence_index,
                      learn_signature)
from .sandbox import (CuckooMonitorDll, SANDBOX_SINKHOLE_IP, SandboxRunner)
from .trace import (SignificantActivity, Trace, alignment_key)
from .tracer import DEFAULT_CATEGORIES, Tracer

__all__ = [
    "Agent", "ComparisonResult", "CorpusSummary", "CuckooMonitorDll",
    "DEFAULT_CATEGORIES", "DeepFreeze", "EvasionSignature",
    "ExperimentCluster", "FamilyBreakdown", "Job", "MachineFactory",
    "PUBLIC_SANDBOX_VOLUMES", "Proxy", "RunRecord",
    "SANDBOX_SINKHOLE_IP", "SELF_SPAWN_LOOP_THRESHOLD",
    "SandboxRunner", "SignificantActivity", "Trace", "Tracer", "Verdict",
    "aggregate_by_family", "align_traces", "alignment_key",
    "build_bare_metal_sandbox", "build_clean_baseline",
    "build_cuckoo_vm_sandbox", "build_end_user_machine",
    "build_public_sandbox", "build_public_sandboxes", "compare_runs",
    "extract_evasion_signature", "first_divergence_index",
    "learn_signature", "run_sample", "summarize",
]
