"""MalGene-style evasion-signature extraction (Kirat & Vigna, CCS'15).

MalGene aligns two traces of the same sample — one where it evaded, one
where it detonated — and extracts the *first* system resource at which the
executions diverge as the evasion signature. Section II-C uses this as the
continuous feed of new deceptive resources ("One way to continuously learn
new deceptive resources is to leverage the analysis results from MalGene"),
including the caveat that only the first deviation-causing resource is
reported.
"""

from __future__ import annotations

import dataclasses
import difflib
from typing import List, Optional, Tuple

from ..core.database import DeceptionDatabase
from ..core.resources import Origin
from ..winsim.bus import KernelEvent
from .trace import Trace, alignment_key

#: Event shapes that look like environment queries (candidate signatures).
_QUERY_EVENTS = {
    ("registry", "RegOpenKey"), ("registry", "RegQueryValue"),
    ("file", "QueryAttributes"), ("file", "CreateFile"),
    ("file", "OpenFile"), ("file", "OpenDevice"),
    ("process", "EnumProcesses"),
    ("net", "DnsQuery"), ("net", "HttpGet"),
}


@dataclasses.dataclass(frozen=True)
class EvasionSignature:
    """The resource whose query caused the two executions to diverge."""

    category: str
    operation: str
    resource: str

    def describe(self) -> str:
        return f"{self.category}:{self.operation}({self.resource})"


def align_traces(evaded: Trace, detonated: Trace
                 ) -> List[Tuple[str, int, int, int, int]]:
    """Sequence-align two traces; returns difflib opcodes over event keys."""
    keys_a = [alignment_key(e) for e in evaded.events]
    keys_b = [alignment_key(e) for e in detonated.events]
    matcher = difflib.SequenceMatcher(a=keys_a, b=keys_b, autojunk=False)
    return matcher.get_opcodes()


def first_divergence_index(evaded: Trace, detonated: Trace) -> Optional[int]:
    """Index (in the evaded trace) where behaviour first deviates.

    Launch plumbing differs between environments (analysis daemon vs.
    Scarecrow controller), so a leading non-equal block is treated as noise:
    the reported divergence is the first deviation *after* the executions
    have run in lock-step at least once. If the traces never align at all,
    the first raw deviation is returned.
    """
    opcodes = align_traces(evaded, detonated)
    seen_equal = False
    fallback: Optional[int] = None
    for tag, a_start, _a_end, _b_start, _b_end in opcodes:
        if tag == "equal":
            seen_equal = True
            continue
        if fallback is None:
            fallback = a_start
        if seen_equal:
            return a_start
    return fallback


def _is_query_event(event: KernelEvent) -> bool:
    return (event.category, event.name) in _QUERY_EVENTS


def _resource_of(event: KernelEvent) -> str:
    for key in ("key", "path", "domain", "value"):
        value = event.detail(key)
        if isinstance(value, str) and value:
            return value
    return event.name


def extract_evasion_signature(evaded: Trace,
                              detonated: Trace) -> Optional[EvasionSignature]:
    """MalGene's output: the first deviation-causing resource query.

    Walk back from the divergence point through the evaded trace to the
    nearest environment-query event — that query's resource is the
    signature. Returns ``None`` when the traces never diverge.
    """
    index = first_divergence_index(evaded, detonated)
    if index is None:
        return None
    for position in range(min(index, len(evaded.events) - 1), -1, -1):
        event = evaded.events[position]
        if _is_query_event(event):
            return EvasionSignature(event.category, event.name,
                                    _resource_of(event))
    return None


def learn_signature(db: DeceptionDatabase,
                    signature: EvasionSignature,
                    profile: str = "sandbox-generic") -> bool:
    """Feed a MalGene signature back into the deception database.

    Returns ``True`` when the database gained a new resource. This is the
    II-C learning loop; per the paper's caveat only the *first* resource of
    a multi-technique sample is ever learned this way.
    """
    if signature.category == "registry":
        if db.lookup_registry_key(signature.resource) is not None:
            return False
        db.add_registry_key(signature.resource, profile,
                            origin=Origin.MALGENE)
        return True
    if signature.category == "file":
        if db.lookup_file(signature.resource) is not None:
            return False
        db.add_file(signature.resource, profile, origin=Origin.MALGENE)
        return True
    return False
