"""Deactivation verdicts: the with/without-Scarecrow trace comparison.

Section IV-C.1's methodology, verbatim:

1. A sample that keeps spawning itself (>10 respawns) under Scarecrow never
   reaches the code beyond its evasive logic → **deactivated (self-spawn)**.
2. Otherwise, compare traces: significant activities (new processes,
   file writes, registry modification) present *without* Scarecrow but
   absent *with* it → **deactivated (suppressed)**.
3. No significant activity even without Scarecrow (the Selfdel family) →
   **inconclusive** — effectiveness cannot be determined.
4. Significant activity in both traces → **not deactivated**.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from ..malware.sample import EvasiveSample, SampleRunResult
from .trace import SignificantActivity, Trace

#: Respawn count that constitutes an everlasting loop (paper: ">10 times").
SELF_SPAWN_LOOP_THRESHOLD = 10


class Verdict(enum.Enum):
    DEACTIVATED_SELF_SPAWN = "deactivated (self-spawn loop)"
    DEACTIVATED_SUPPRESSED = "deactivated (activity suppressed)"
    NOT_DEACTIVATED = "not deactivated"
    INCONCLUSIVE = "inconclusive"

    @property
    def deactivated(self) -> bool:
        return self in (Verdict.DEACTIVATED_SELF_SPAWN,
                        Verdict.DEACTIVATED_SUPPRESSED)


@dataclasses.dataclass
class ComparisonResult:
    """Verdict plus the evidence that produced it."""

    sample_md5: str
    family: str
    verdict: Verdict
    self_spawn_count: int
    trigger: Optional[str]
    used_is_debugger_present: bool
    activity_without: SignificantActivity
    activity_with: SignificantActivity

    @property
    def deactivated(self) -> bool:
        return self.verdict.deactivated

    @property
    def self_spawning(self) -> bool:
        return self.self_spawn_count >= SELF_SPAWN_LOOP_THRESHOLD


def compare_runs(sample: EvasiveSample,
                 trace_without: Trace, result_without: SampleRunResult,
                 trace_with: Trace, result_with: SampleRunResult,
                 root_pid_without: int,
                 root_pid_with: int) -> ComparisonResult:
    """Apply the Section IV-C.1 decision procedure to one sample."""
    scoped_without = trace_without.scoped_to_pids(
        trace_without.process_tree_pids(root_pid_without))
    scoped_with = trace_with.scoped_to_pids(
        trace_with.process_tree_pids(root_pid_with))
    activity_without = scoped_without.significant_activity(
        sample.exe_name, sample.image_path)
    activity_with = scoped_with.significant_activity(
        sample.exe_name, sample.image_path)

    if result_with.self_spawn_count >= SELF_SPAWN_LOOP_THRESHOLD:
        verdict = Verdict.DEACTIVATED_SELF_SPAWN
    elif activity_without.empty:
        verdict = Verdict.INCONCLUSIVE
    elif activity_with.empty:
        verdict = Verdict.DEACTIVATED_SUPPRESSED
    else:
        verdict = Verdict.NOT_DEACTIVATED
    return ComparisonResult(
        sample_md5=sample.md5, family=sample.family, verdict=verdict,
        self_spawn_count=result_with.self_spawn_count,
        trigger=result_with.trigger,
        used_is_debugger_present=result_with.used_is_debugger_present,
        activity_without=activity_without, activity_with=activity_with)


@dataclasses.dataclass
class FamilyBreakdown:
    """Figure 4's per-family bars."""

    family: str
    total: int = 0
    deactivated: int = 0
    self_spawning: int = 0
    created_processes_without: int = 0
    modified_files_registry_without: int = 0

    @property
    def deactivation_rate(self) -> float:
        return self.deactivated / self.total if self.total else 0.0


def aggregate_by_family(results: List[ComparisonResult]
                        ) -> Dict[str, FamilyBreakdown]:
    """Fold per-sample verdicts into Figure 4's family bars.

    The process-creation / file-registry sub-counts are, as in the paper,
    over *deactivated* samples' without-Scarecrow behaviour ("26 samples
    created new processes without deploying SCARECROW").
    """
    breakdown: Dict[str, FamilyBreakdown] = {}
    for result in results:
        family = breakdown.setdefault(result.family,
                                      FamilyBreakdown(result.family))
        family.total += 1
        if result.deactivated:
            family.deactivated += 1
            if result.activity_without.creates_processes:
                family.created_processes_without += 1
            if result.activity_without.modifies_files_or_registry:
                family.modified_files_registry_without += 1
        if result.self_spawning:
            family.self_spawning += 1
    return breakdown


@dataclasses.dataclass
class CorpusSummary:
    """The §IV-C.1 headline numbers."""

    total: int
    deactivated: int
    self_spawning: int
    self_spawning_using_idp: int
    inconclusive: int
    not_deactivated: int

    @property
    def deactivation_rate(self) -> float:
        return self.deactivated / self.total if self.total else 0.0


def summarize(results: List[ComparisonResult]) -> CorpusSummary:
    return CorpusSummary(
        total=len(results),
        deactivated=sum(1 for r in results if r.deactivated),
        self_spawning=sum(1 for r in results if r.self_spawning),
        self_spawning_using_idp=sum(
            1 for r in results
            if r.self_spawning and r.used_is_debugger_present),
        inconclusive=sum(1 for r in results
                         if r.verdict is Verdict.INCONCLUSIVE),
        not_deactivated=sum(1 for r in results
                            if r.verdict is Verdict.NOT_DEACTIVATED),
    )
