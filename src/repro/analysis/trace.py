"""Trace records — the Fibratus-substitute event log of one run.

A :class:`Trace` is an ordered list of kernel events scoped however the
collector chose (whole machine or one process tree), with the query helpers
the evaluation needs: which processes were created, which files written or
renamed, which registry entries modified, which domains contacted.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set, Tuple

from ..winsim.bus import KernelEvent

#: Event (category, name) pairs counted as *significant activity* when
#: deciding deactivation (Section IV-C.1: "creating new processes, writing
#: files, and modifying registries").
SIGNIFICANT_FILE_OPS = {"WriteFile", "CreateFile", "RenameFile",
                        "CreateDirectory"}
SIGNIFICANT_REGISTRY_OPS = {"RegSetValue", "RegCreateKey", "RegDeleteKey"}


@dataclasses.dataclass
class Trace:
    """One collected event sequence."""

    label: str
    events: List[KernelEvent] = dataclasses.field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def append(self, event: KernelEvent) -> None:
        self.events.append(event)

    # -- filtering --------------------------------------------------------

    def by_category(self, category: str) -> List[KernelEvent]:
        return [e for e in self.events if e.category == category]

    def by_name(self, name: str) -> List[KernelEvent]:
        return [e for e in self.events if e.name == name]

    def scoped_to_pids(self, pids: Set[int]) -> "Trace":
        return Trace(self.label,
                     [e for e in self.events if e.pid in pids])

    # -- process-tree reconstruction ----------------------------------------

    def process_tree_pids(self, root_pid: int) -> Set[int]:
        """Every pid reachable from ``root_pid`` via CreateProcess events."""
        children: Dict[int, List[int]] = {}
        for event in self.events:
            if event.category == "process" and event.name == "CreateProcess":
                children.setdefault(event.detail("ppid"), []).append(event.pid)
        tree = {root_pid}
        frontier = [root_pid]
        while frontier:
            pid = frontier.pop()
            for child in children.get(pid, ()):
                if child not in tree:
                    tree.add(child)
                    frontier.append(child)
        return tree

    # -- significant-activity extraction ----------------------------------------

    def processes_created(self,
                          exclude_names: Sequence[str] = ()) -> List[str]:
        excluded = {n.lower() for n in exclude_names}
        return [e.detail("name") for e in self.events
                if e.category == "process" and e.name == "CreateProcess"
                and e.detail("name", "").lower() not in excluded]

    def files_touched(self, exclude_paths: Sequence[str] = ()) -> List[str]:
        excluded = {p.lower() for p in exclude_paths}
        touched = []
        for event in self.events:
            if event.category != "file" or \
                    event.name not in SIGNIFICANT_FILE_OPS:
                continue
            path = event.detail("path", "")
            if path.lower() in excluded:
                continue
            touched.append(path)
        return touched

    def registry_modified(self) -> List[str]:
        return [e.detail("key", "") for e in self.events
                if e.category == "registry"
                and e.name in SIGNIFICANT_REGISTRY_OPS]

    def domains_contacted(self) -> List[str]:
        return [e.detail("domain", "") for e in self.events
                if e.category == "net"]

    def domains_reached(self) -> List[str]:
        """Domains that actually resolved (non-NX answers only).

        Fingerprint probes against made-up domains answer ``None`` at the
        genuine resolver (Scarecrow's sinkhole value is layered on *after*
        the traced resolution), so this filter keeps real C2 contact while
        dropping NX-domain evasion probes.
        """
        return [e.detail("domain", "") for e in self.events
                if e.category == "net" and e.detail("answer") is not None]

    def significant_activity(self, sample_exe: str,
                             sample_image_path: str) -> "SignificantActivity":
        """Extract Section IV-C.1's significant-activity triple.

        Spawns of the sample's own image are excluded from the process set
        (they are the *self-spawn* signal, counted separately), and deletes
        or rewrites of the sample's own image are not significant (the
        Selfdel caveat).
        """
        return SignificantActivity(
            processes=tuple(self.processes_created(
                exclude_names=(sample_exe, "scarecrow.exe"))),
            files=tuple(self.files_touched(
                exclude_paths=(sample_image_path,))),
            registry=tuple(self.registry_modified()),
            network=tuple(self.domains_reached()),
        )

    def self_spawn_count(self, sample_exe: str) -> int:
        wanted = sample_exe.lower()
        return sum(1 for e in self.events
                   if e.category == "process" and e.name == "CreateProcess"
                   and e.detail("name", "").lower() == wanted)


@dataclasses.dataclass(frozen=True)
class SignificantActivity:
    processes: Tuple[str, ...]
    files: Tuple[str, ...]
    registry: Tuple[str, ...]
    network: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.processes or self.files or self.registry or
                    self.network)

    @property
    def creates_processes(self) -> bool:
        return bool(self.processes)

    @property
    def modifies_files_or_registry(self) -> bool:
        return bool(self.files or self.registry)


def alignment_key(event: KernelEvent) -> Tuple[str, str, str, str]:
    """Stable key for trace alignment (MalGene-style diffing).

    Timestamps and pids are excluded on purpose — two runs of the same
    sample differ in both even when behaviour is identical. Query *outcomes*
    (the ``found`` flag) are included: the whole point of the alignment is
    locating the query whose differing answer made the executions diverge.
    """
    found = event.detail("found")
    outcome = "" if found is None else f"found={bool(found)}"
    for detail_key in ("path", "key", "domain", "name", "image"):
        value = event.detail(detail_key)
        if isinstance(value, str) and value:
            return (event.category, event.name, value.lower(), outcome)
    return (event.category, event.name, "", outcome)
