"""Machine builders for every execution environment in the evaluation.

Three Table II environments:

* :func:`build_bare_metal_sandbox` — the paper's bare-metal cluster node:
  pristine Windows 7, no VM artifacts, no user activity, moderate uptime.
* :func:`build_cuckoo_vm_sandbox` — Cuckoo 2.0.3 on VirtualBox: guest
  additions everywhere, 1 vCPU / ~1 GB RAM, fresh boot, Cuckoo's "human"
  module wiggling the mouse. The ``transparent=True`` variant models the
  hardening applied for the with-Scarecrow runs ("We also modified CPUID
  instruction results and updated the MAC address of the Cuckoo sandbox").
* :func:`build_end_user_machine` — an actively-used workstation with
  VMware Workstation installed ("due to work requirements"), long uptime,
  heavy wear-and-tear, and the noisy timing that makes
  ``rdtsc_diff_vmexit`` fire spuriously (as observed in the paper).

Plus the Section II-C substrate: two public-sandbox machines (VirusTotal /
Malwr models) carrying exactly the unique resources whose crawl-diff yields
the paper's 17,540 / 24 / 1,457 counts, and the clean baseline machine the
diff subtracts.

Builders must be **deterministic**: two calls (same arguments) must
produce machines whose observable state is byte-identical. Corpus sweeps
no longer call a builder per run — each worker builds once and rewinds
via :class:`repro.parallel.template.MachineTemplate` — and the
``template="verify"`` sweep mode will flag any builder that drifts
between calls as a ``TemplateParityError``. These builders are exposed to
sweeps under registered names in :mod:`repro.parallel.factories`.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from ..winsim.clock import TimingProfile
from ..winsim.hardware import HV_VENDOR_VBOX
from ..winsim.machine import Machine, MachineIdentity
from ..winsim.types import GIB, MIB

MINUTE_MS = 60 * 1000
HOUR_MS = 60 * MINUTE_MS
DAY_MS = 24 * HOUR_MS


# ---------------------------------------------------------------------------
# Shared provisioning
# ---------------------------------------------------------------------------

def _provision_cpu_brand_registry(machine: Machine) -> None:
    machine.registry.set_value(
        "HKEY_LOCAL_MACHINE\\HARDWARE\\DESCRIPTION\\System\\CentralProcessor\\0",
        "ProcessorNameString", machine.hardware.cpu.brand)


def _provision_scsi_identifier(machine: Machine, identifier: str) -> None:
    machine.registry.set_value(
        "HKEY_LOCAL_MACHINE\\HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\"
        "Scsi Bus 0\\Target Id 0\\Logical Unit Id 0",
        "Identifier", identifier)


def _provision_weartear(machine: Machine, *, dnscache_entries: int,
                        event_count: int, event_sources: int,
                        device_classes: int, autorun_values: int,
                        uninstall_keys: int, shared_dlls: int,
                        app_paths: int, active_setup: int, userassist: int,
                        shimcache: int, muicache: int, firewall_rules: int,
                        usbstor: int, registry_padding_bytes: int) -> None:
    """Apply an aging level to a machine (the Miramirkhani artifacts)."""
    reg = machine.registry
    reg.bulk_padding_bytes = registry_padding_bytes
    machine.dnscache.populate(
        f"host-{i:04d}.visited.example" for i in range(dnscache_entries))
    sources = [f"Source-{i:02d}" for i in range(max(1, event_sources))]
    machine.eventlog.extend_synthetic(event_count, sources)
    device_cls = ("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\"
                  "DeviceClasses")
    for index in range(device_classes):
        reg.create_key(f"{device_cls}\\{{class-{index:04d}}}")
    run_key = ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
               "CurrentVersion\\Run")
    for index in range(autorun_values):
        reg.set_value(run_key, f"Startup{index:02d}",
                      f"C:\\Program Files\\App{index:02d}\\app.exe")
    uninstall = ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
                 "CurrentVersion\\Uninstall")
    for index in range(uninstall_keys):
        reg.set_value(f"{uninstall}\\Product{index:03d}", "DisplayName",
                      f"Product {index:03d}")
    shared = ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
              "CurrentVersion\\SharedDlls")
    for index in range(shared_dlls):
        reg.set_value(shared, f"C:\\Windows\\System32\\shared{index:03d}.dll",
                      index + 1)
    app_paths_key = ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\"
                     "CurrentVersion\\App Paths")
    for index in range(app_paths):
        reg.create_key(f"{app_paths_key}\\app{index:03d}.exe")
    active = ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Active Setup\\"
              "Installed Components")
    for index in range(active_setup):
        reg.create_key(f"{active}\\{{component-{index:03d}}}")
    ua = ("HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\CurrentVersion\\"
          "Explorer\\UserAssist")
    for index in range(userassist):
        reg.create_key(f"{ua}\\{{guid-{index:03d}}}")
    shim = ("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\"
            "Session Manager\\AppCompatCache")
    for index in range(shimcache):
        reg.set_value(shim, f"entry{index:04d}", b"\x00" * 8)
    mui = ("HKEY_CURRENT_USER\\Software\\Classes\\Local Settings\\Software\\"
           "Microsoft\\Windows\\Shell\\MuiCache")
    for index in range(muicache):
        reg.set_value(mui, f"C:\\Program Files\\App{index:02d}\\app.exe",
                      f"Application {index:02d}")
    firewall = ("HKEY_LOCAL_MACHINE\\SYSTEM\\ControlSet001\\services\\"
                "SharedAccess\\Parameters\\FirewallPolicy\\FirewallRules")
    for index in range(firewall_rules):
        reg.set_value(firewall, f"{{rule-{index:03d}}}",
                      "v2.10|Action=Allow|")
    usb = "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Services\\UsbStor"
    for index in range(usbstor):
        reg.create_key(f"{usb}\\Disk&Ven_Vendor{index}&Prod_Stick{index}")


def _register_common_internet(machine: Machine) -> None:
    """A handful of genuinely-resolvable names every environment shares."""
    for domain in ("www.microsoft.com", "windowsupdate.microsoft.com",
                   "www.google.com", "time.windows.com"):
        ip = machine.network.register_domain(domain)
        machine.network.mark_reachable(ip)


# ---------------------------------------------------------------------------
# Table II environment (a): bare-metal sandbox
# ---------------------------------------------------------------------------

def build_bare_metal_sandbox(aged: bool = True) -> Machine:
    """``aged=False`` skips the wear-and-tear provisioning — corpus-scale
    sweeps that never read those surfaces build machines much faster."""
    machine = Machine(
        identity=MachineIdentity(hostname="BM-NODE-03", username="analyst"),
        timing=TimingProfile(),  # clean native timing
        boot_tick_ms=47 * MINUTE_MS)  # agent provisioning after reboot
    machine.hardware.cpu.cores = 4
    machine.hardware.total_ram = 8 * GIB
    machine.hardware.available_ram = 6 * GIB
    machine.filesystem.add_drive("C:", 256 * GIB, used_bytes_base=28 * GIB)
    machine.boot()
    machine.network.add_adapter("Local Area Connection", "F0:1F:AF:3A:5B:01",
                                "Intel(R) 82579LM Gigabit")
    _provision_cpu_brand_registry(machine)
    _provision_scsi_identifier(machine, "DELL PERC H310")
    _register_common_internet(machine)
    if aged:
        # Pristine image: almost no wear-and-tear.
        _provision_weartear(machine, dnscache_entries=3, event_count=2800,
                            event_sources=5, device_classes=24,
                            autorun_values=2, uninstall_keys=3,
                            shared_dlls=9, app_paths=12, active_setup=8,
                            userassist=2, shimcache=14, muicache=3,
                            firewall_rules=18, usbstor=0,
                            registry_padding_bytes=38 * MIB)
    machine.gui.humanized = False
    machine.gui.move_cursor(512, 384)
    return machine


# ---------------------------------------------------------------------------
# Table II environment (b): Cuckoo sandbox on VirtualBox
# ---------------------------------------------------------------------------

def build_cuckoo_vm_sandbox(transparent: bool = False) -> Machine:
    """Cuckoo 2.0.3 inside a VirtualBox Windows 7 guest.

    ``transparent=True`` applies the hardening used for the with-Scarecrow
    measurements: CPUID results modified (hypervisor bit and vendor leaf
    masked, no CPUID trap cost), a non-VM MAC address, and customized DMI
    firmware strings.
    """
    machine = Machine(
        identity=MachineIdentity(hostname="CUCKOO1-PC", username="user"),
        timing=TimingProfile(cpuid_overhead_ns=60),
        boot_tick_ms=4 * MINUTE_MS)  # snapshot restored moments ago
    cpu = machine.hardware.cpu
    cpu.cores = 1
    cpu.hypervisor_present = True
    cpu.hypervisor_vendor = HV_VENDOR_VBOX
    cpu.cpuid_traps = not transparent
    cpu.mask_hypervisor_bit = transparent
    machine.hardware.total_ram = 1 * GIB - 32 * MIB
    machine.hardware.available_ram = 540 * MIB
    machine.filesystem.add_drive("C:", 100 * GIB, used_bytes_base=22 * GIB)
    if transparent:
        machine.hardware.firmware.bios_version = "DELL   - 6222004"
        machine.hardware.firmware.system_manufacturer = "Dell Inc."
        machine.hardware.firmware.video_bios_version = "Intel Video BIOS"
        machine.hardware.firmware.scsi_identifier = None
    else:
        machine.hardware.firmware.bios_version = "VBOX   - 1"
        machine.hardware.firmware.system_manufacturer = "innotek GmbH"
        machine.hardware.firmware.video_bios_version = \
            "Oracle VM VirtualBox Version 5.2.8"
        machine.hardware.firmware.scsi_identifier = "VBOX HARDDISK"
    machine.boot()
    machine.network.add_adapter(
        "Local Area Connection",
        "52:54:9B:0C:11:22" if transparent else "08:00:27:8D:C0:FF",
        "Intel PRO/1000 MT Desktop Adapter")
    _provision_cpu_brand_registry(machine)
    _provision_scsi_identifier(machine, "VBOX HARDDISK")
    _register_common_internet(machine)

    # -- VirtualBox guest artifacts (registry, files, devices, processes) --
    reg = machine.registry
    reg.create_key("HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\"
                   "VirtualBox Guest Additions")
    reg.set_value("HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\"
                  "VirtualBox Guest Additions", "Version", "5.2.8")
    for table in ("DSDT", "FADT", "RSDT"):
        reg.create_key(f"HKEY_LOCAL_MACHINE\\HARDWARE\\ACPI\\{table}\\VBOX__")
    reg.set_value("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
                  "SystemBiosVersion", "VBOX   - 1")
    reg.set_value("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
                  "VideoBiosVersion",
                  "Oracle VM VirtualBox Version 5.2.8")
    reg.set_value("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
                  "SystemBiosDate", "06/23/99")
    reg.create_key("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Enum\\"
                   "IDE\\DiskVBOX_HARDDISK___________________________1.0_")
    for service in ("VBoxGuest", "VBoxService"):
        reg.create_key("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\"
                       f"Services\\{service}")
        machine.services.install(service)
    fs = machine.filesystem
    for name in ("VBoxMouse.sys", "VBoxGuest.sys", "VBoxSF.sys",
                 "VBoxVideo.sys"):
        fs.write_file(f"C:\\Windows\\System32\\drivers\\{name}", b"driver")
    for name in ("vboxdisp.dll", "vboxhook.dll", "vboxogl.dll",
                 "VBoxService.exe", "VBoxTray.exe"):
        fs.write_file(f"C:\\Windows\\System32\\{name}", b"MZ")
    for device in ("\\\\.\\VBoxGuest", "\\\\.\\VBoxMiniRdrDN",
                   "\\\\.\\VBoxTrayIPC"):
        machine.devices.register(device)
    vbox_service = machine.spawn_process(
        "VBoxService.exe", "C:\\Windows\\System32\\VBoxService.exe",
        parent=machine.processes.find_by_name("services.exe")[0])
    vbox_tray = machine.spawn_process(
        "VBoxTray.exe", "C:\\Windows\\System32\\VBoxTray.exe",
        parent=machine.explorer)
    machine.gui.create_window("VBoxTrayToolWndClass", "VBoxTrayToolWnd",
                              owner_pid=vbox_tray.pid)

    # -- Cuckoo bits: agent + human module (no shared folders, internet-
    #    routed DNS, no sleep skipping in this deployment) ------------------
    fs.write_file("C:\\Users\\user\\AppData\\Local\\Temp\\agent.py",
                  b"# cuckoo agent")
    machine.spawn_process(
        "pythonw.exe",
        "C:\\Python27\\pythonw.exe", parent=machine.explorer,
        command_line="pythonw.exe C:\\Users\\user\\AppData\\Local\\Temp\\agent.py")
    machine.gui.humanized = True  # Cuckoo's human auxiliary moves the mouse

    # Barely-used snapshot image.
    _provision_weartear(machine, dnscache_entries=2, event_count=1900,
                        event_sources=4, device_classes=26, autorun_values=2,
                        uninstall_keys=4, shared_dlls=11, app_paths=14,
                        active_setup=9, userassist=1, shimcache=9,
                        muicache=2, firewall_rules=16, usbstor=0,
                        registry_padding_bytes=41 * MIB)
    return machine


# ---------------------------------------------------------------------------
# Table II environment (c): actively-used end-user machine
# ---------------------------------------------------------------------------

def build_end_user_machine() -> Machine:
    machine = Machine(
        identity=MachineIdentity(hostname="JOHN-PC", username="john"),
        # Noisy host timing: VMware host services and SMM traffic make the
        # rdtsc_diff_vmexit probe fire spuriously, as the paper observed.
        timing=TimingProfile(cpuid_overhead_ns=2000, rdtsc_jitter_ns=6),
        boot_tick_ms=19 * DAY_MS + 7 * HOUR_MS)
    machine.hardware.cpu.cores = 4
    machine.hardware.total_ram = 8 * GIB
    machine.hardware.available_ram = 3 * GIB
    machine.filesystem.add_drive("C:", 256 * GIB, used_bytes_base=120 * GIB)
    machine.boot()
    machine.network.add_adapter("Local Area Connection", "3C:97:0E:52:AA:10",
                                "Intel(R) Ethernet Connection I217-LM")
    _provision_cpu_brand_registry(machine)
    _provision_scsi_identifier(machine, "SAMSUNG SSD 850")
    _register_common_internet(machine)

    # VMware Workstation installed as a *host* application: host-side VMCI
    # device plus hundreds of registry references, but no guest-tools
    # drivers (those only exist inside guests).
    machine.devices.register("\\\\.\\vmci")
    reg = machine.registry
    base = "HKEY_LOCAL_MACHINE\\SOFTWARE\\VMware, Inc.\\VMware Workstation"
    reg.set_value(base, "InstallPath",
                  "C:\\Program Files (x86)\\VMware\\VMware Workstation\\")
    for index in range(150):
        reg.set_value(f"{base}\\Settings", f"pref.vmware.{index:03d}",
                      f"value-{index}")
    for index in range(160):
        reg.set_value(
            "HKEY_CURRENT_USER\\Software\\VMware, Inc.\\VMware Workstation",
            f"mru.vmx.{index:03d}",
            f"C:\\VMware VMs\\machine{index:03d}\\machine.vmx")
    machine.filesystem.write_file(
        "C:\\Program Files (x86)\\VMware\\VMware Workstation\\vmware.exe",
        b"MZ")

    # A lived-in user profile.
    fs = machine.filesystem
    for index in range(40):
        fs.write_file(f"C:\\Users\\john\\Documents\\report_{index:02d}.docx",
                      b"Q" * 400)
    for index in range(25):
        fs.write_file(f"C:\\Users\\john\\Documents\\photos\\img_{index:03d}.jpg",
                      b"\xff\xd8" + b"J" * 700)
    fs.write_file("C:\\Users\\john\\Documents\\budget.xlsx", b"X" * 900)
    fs.write_file("C:\\Users\\john\\Desktop\\notes.txt", b"remember milk")
    fs.write_file(
        "C:\\Users\\john\\AppData\\Local\\Google\\Chrome\\User Data\\"
        "Default\\History", b"H" * 60_000)
    fs.write_file(
        "C:\\Users\\john\\AppData\\Local\\Google\\Chrome\\User Data\\"
        "Default\\Cookies", b"C" * 25_000)
    fs.write_file(
        "C:\\Users\\john\\AppData\\Local\\Google\\Chrome\\User Data\\"
        "Default\\Bookmarks", b"B" * 4_000)

    _provision_weartear(machine, dnscache_entries=187, event_count=30_000,
                        event_sources=40, device_classes=180,
                        autorun_values=9, uninstall_keys=35, shared_dlls=120,
                        app_paths=40, active_setup=30, userassist=160,
                        shimcache=220, muicache=75, firewall_rules=90,
                        usbstor=6, registry_padding_bytes=210 * MIB)
    # The user is logged in but idle while experiments run (the paper saw
    # Pafish's mouse check trigger on this machine for exactly that reason).
    machine.gui.humanized = False
    machine.gui.move_cursor(811, 404)
    return machine


# ---------------------------------------------------------------------------
# Public-sandbox machines for the Section II-C crawl
# ---------------------------------------------------------------------------

#: Unique-resource volumes per public sandbox; their sums are the paper's
#: collected totals (17,540 files / 24 processes / 1,457 registry entries).
PUBLIC_SANDBOX_VOLUMES = {
    # registry_keys counts the generated leaves; each sandbox also carries
    # one unique container key, so the crawl-diff registry total is
    # 856 + 599 + 2 = 1,457 entries.
    "virustotal": {"files": 9820, "registry_keys": 856, "processes": 13},
    "malwr": {"files": 7720, "registry_keys": 599, "processes": 11},
}


def build_clean_baseline() -> Machine:
    """The bare-metal comparison image for the crawler diff."""
    machine = Machine(identity=MachineIdentity(hostname="CLEAN-BASE",
                                               username="analyst"))
    machine.filesystem.add_drive("C:", 256 * GIB, used_bytes_base=28 * GIB)
    machine.boot()
    _provision_cpu_brand_registry(machine)
    return machine


def build_public_sandbox(name: str) -> Machine:
    """A VirusTotal/Malwr-style sandbox with its unique resource load."""
    if name not in PUBLIC_SANDBOX_VOLUMES:
        raise ValueError(f"unknown public sandbox: {name!r}")
    volumes = PUBLIC_SANDBOX_VOLUMES[name]
    machine = Machine(identity=MachineIdentity(
        hostname=f"{name.upper()}-NODE", username="analyst"))
    machine.filesystem.add_drive(
        "C:", (5 if name == "malwr" else 40) * GIB,
        used_bytes_base=2 * GIB)  # Malwr's famous 5 GB C: drive
    machine.boot()
    _provision_cpu_brand_registry(machine)
    machine.hardware.cpu.cores = 1
    machine.hardware.total_ram = 1 * GIB - 32 * MIB

    fs = machine.filesystem
    for index in range(volumes["files"]):
        digest = hashlib.sha1(f"{name}/file/{index}".encode()).hexdigest()
        subdir = f"C:\\{name}_analysis\\deps\\{digest[:2]}"
        fs.write_file(f"{subdir}\\{digest[2:18]}.bin", b"\x00")
    reg = machine.registry
    for index in range(volumes["registry_keys"]):
        digest = hashlib.sha1(f"{name}/reg/{index}".encode()).hexdigest()
        reg.create_key("HKEY_LOCAL_MACHINE\\SOFTWARE\\"
                       f"{name.capitalize()}Sandbox\\Component{digest[:10]}")
    services_proc = machine.processes.find_by_name("services.exe")[0]
    for index in range(volumes["processes"]):
        machine.spawn_process(f"{name}_svc_{index:02d}.exe",
                              f"C:\\{name}_analysis\\bin\\svc{index:02d}.exe",
                              parent=services_proc)
    return machine


def build_public_sandboxes() -> List[Tuple[str, Machine]]:
    return [(name, build_public_sandbox(name))
            for name in PUBLIC_SANDBOX_VOLUMES]
