"""Experiment orchestration: the agent/proxy cluster of Figure 3.

Each bare-metal node runs a Python agent that fetches a (sample, config)
job from the proxy, executes the sample for a minute while Fibratus traces
kernel activity, uploads the trace, and resets the machine. Here, a fresh
simulated machine per job substitutes for the Deep Freeze reboot cycle and
the trace upload is a return value.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.controller import ScarecrowController
from ..core.database import DeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..malware.sample import EvasiveSample, SampleRunResult
from ..winsim.machine import Machine
from .trace import Trace
from .tracer import Tracer

MachineFactory = Callable[[], Machine]


@dataclasses.dataclass
class RunRecord:
    """One sample execution: configuration, trace, outcome."""

    sample_md5: str
    with_scarecrow: bool
    trace: Trace
    result: SampleRunResult
    root_pid: int
    machine: Machine
    controller: Optional[ScarecrowController] = None

    @property
    def first_trigger(self) -> Optional[str]:
        return self.result.trigger


def _seed_sample_image(machine: Machine, sample: EvasiveSample) -> None:
    machine.filesystem.write_file(sample.image_path,
                                  b"MZ\x90\x00" + sample.md5.encode())


def run_sample(machine: Machine, sample: EvasiveSample,
               with_scarecrow: bool,
               database: Optional[DeceptionDatabase] = None,
               config: Optional[ScarecrowConfig] = None) -> RunRecord:
    """Execute one sample on ``machine``, traced, one-minute style."""
    _seed_sample_image(machine, sample)
    controller: Optional[ScarecrowController] = None
    tracer = Tracer(machine, label=f"{sample.md5[:7]}"
                                   f"{'+scarecrow' if with_scarecrow else ''}")
    with tracer:
        if with_scarecrow:
            controller = ScarecrowController(machine, database, config)
            process = controller.launch(sample.image_path)
        else:
            agent = machine.spawn_process(
                "pythonw.exe", "C:\\Python27\\pythonw.exe",
                parent=machine.processes.find_by_name("services.exe")[0],
                command_line="pythonw.exe agent.py")
            process = machine.spawn_process(
                sample.exe_name, sample.image_path, parent=agent,
                command_line=sample.image_path)
            process.tags["untrusted"] = True
        result = sample.run(machine, process)
    if controller is not None:
        controller.shutdown()
    return RunRecord(sample.md5, with_scarecrow, tracer.trace, result,
                     process.pid, machine, controller)


@dataclasses.dataclass
class Job:
    sample: EvasiveSample
    with_scarecrow: bool


class Proxy:
    """Job queue + trace sink (the hub of Figure 3)."""

    def __init__(self) -> None:
        self._queue: Deque[Job] = deque()
        self.uploads: List[RunRecord] = []

    def submit(self, sample: EvasiveSample, with_scarecrow: bool) -> None:
        self._queue.append(Job(sample, with_scarecrow))

    def submit_pair(self, sample: EvasiveSample) -> None:
        """Both configurations "at about the same time" (Section IV-C.1)."""
        self.submit(sample, with_scarecrow=False)
        self.submit(sample, with_scarecrow=True)

    def fetch(self) -> Optional[Job]:
        return self._queue.popleft() if self._queue else None

    def upload(self, record: RunRecord) -> None:
        self.uploads.append(record)

    @property
    def pending(self) -> int:
        return len(self._queue)


class Agent:
    """One cluster node: fetch job → fresh machine → run → upload."""

    def __init__(self, proxy: Proxy, machine_factory: MachineFactory,
                 database_factory: Optional[
                     Callable[[], DeceptionDatabase]] = None,
                 config: Optional[ScarecrowConfig] = None) -> None:
        self.proxy = proxy
        self.machine_factory = machine_factory
        self.database_factory = database_factory
        self.config = config
        self.jobs_completed = 0

    def run_one(self) -> bool:
        job = self.proxy.fetch()
        if job is None:
            return False
        machine = self.machine_factory()  # Deep-Freeze-fresh state
        database = self.database_factory() if self.database_factory else None
        record = run_sample(machine, job.sample, job.with_scarecrow,
                            database, self.config)
        self.proxy.upload(record)
        self.jobs_completed += 1
        return True

    def run_until_idle(self) -> int:
        completed = 0
        while self.run_one():
            completed += 1
        return completed


class ExperimentCluster:
    """The whole Figure 3 rig, with a shared deception database.

    A single :class:`DeceptionDatabase` is built once and shared across
    runs (it is read-only during execution), which keeps 1,000-sample
    sweeps fast.
    """

    def __init__(self, machine_factory: MachineFactory,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 agents: int = 1) -> None:
        self.proxy = Proxy()
        self.database = database or DeceptionDatabase()
        self.config = config
        self._agents = [
            Agent(self.proxy, machine_factory,
                  database_factory=lambda: self.database, config=config)
            for _ in range(max(1, agents))]

    def run_pair(self, sample: EvasiveSample) -> Tuple[RunRecord, RunRecord]:
        """Run one sample in both configurations; returns (without, with)."""
        self.proxy.submit_pair(sample)
        while any(agent.run_one() for agent in self._agents):
            pass
        with_record = self.proxy.uploads.pop()
        without_record = self.proxy.uploads.pop()
        if with_record.with_scarecrow is False:
            without_record, with_record = with_record, without_record
        return without_record, with_record

    def run_corpus(self, samples: List[EvasiveSample]
                   ) -> Dict[str, Tuple[RunRecord, RunRecord]]:
        return {sample.md5: self.run_pair(sample) for sample in samples}
