"""Sandbox runner daemons.

Sandboxes launch samples through an *analysis daemon* (so the sample's
parent is not ``explorer.exe``), optionally inject a monitor DLL (Cuckoo
hooks ``ShellExecuteExW``) and optionally sinkhole NX domains. Scarecrow's
controller deliberately imitates this launch procedure — here is the
genuine article it imitates.
"""

from __future__ import annotations

from ..hooking.injection import hook_manager_of, inject_dll
from ..winsim.machine import Machine
from ..winsim.process import Process

#: IP many sandboxes resolve NX domains to (the paper's WannaCry analysis).
SANDBOX_SINKHOLE_IP = "10.10.10.10"


class CuckooMonitorDll:
    """Cuckoo 2.x's monitor: hooks ``ShellExecuteExW`` (Pafish's Hook hit).

    The module name is the 2.x one — Pafish still greps for the legacy
    ``cuckoomon.dll``, which is why its Cuckoo category scores 0 in every
    Table II column.
    """

    name = "monitor-x64.dll"

    def on_inject(self, machine: Machine, process: Process) -> None:
        manager = hook_manager_of(process, create=True)
        assert manager is not None
        export = "shell32.dll!ShellExecuteExW"
        if not manager.is_hooked(export):
            manager.install(export,
                            lambda call, *args, **kwargs:
                            call.original(*args, **kwargs),
                            owner="cuckoo-monitor")
        process.tags["cuckoo_monitored"] = True


class SandboxRunner:
    """Launch samples the way an analysis daemon does."""

    def __init__(self, machine: Machine, daemon_name: str = "analyzer.exe",
                 inject_monitor: bool = False,
                 sinkhole_nx_domains: bool = False) -> None:
        self.machine = machine
        self.inject_monitor = inject_monitor
        self._monitor = CuckooMonitorDll()
        self.daemon = machine.spawn_process(
            daemon_name, f"C:\\analysis\\{daemon_name}",
            parent=machine.processes.find_by_name("services.exe")[0])
        if sinkhole_nx_domains:
            machine.network.nx_sinkhole_ip = SANDBOX_SINKHOLE_IP
            machine.network.mark_reachable(SANDBOX_SINKHOLE_IP)
        self._unsubscribe = machine.bus.subscribe(self._on_event)
        self._tracked = set()

    def launch(self, image_path: str, command_line: str = "") -> Process:
        name = image_path.rsplit("\\", 1)[-1]
        target = self.machine.spawn_process(
            name, image_path, parent=self.daemon,
            command_line=command_line or image_path)
        target.tags["untrusted"] = True
        self._tracked.add(target.pid)
        if self.inject_monitor:
            inject_dll(self.machine, target, self._monitor)
        return target

    def _on_event(self, event) -> None:
        if event.category != "process" or event.name != "CreateProcess":
            return
        if event.detail("ppid") not in self._tracked:
            return
        child = self.machine.processes.get(event.pid)
        if child is None:
            return
        self._tracked.add(child.pid)
        if self.inject_monitor:
            inject_dll(self.machine, child, self._monitor)

    def shutdown(self) -> None:
        self._unsubscribe()
