"""Kernel-event tracer — the Fibratus substitute.

Subscribes to the machine event bus and records process/thread, file,
registry, network, image-load and Scarecrow events ("All the activities
were uploaded to the proxy in real time" — here the proxy is just the
owning experiment). API-category events are noisy and off by default.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..winsim.bus import KernelEvent
from ..winsim.machine import Machine
from .trace import Trace

#: Categories captured by default, mirroring Fibratus event classes.
DEFAULT_CATEGORIES = frozenset(
    {"process", "thread", "file", "registry", "net", "image", "system",
     "scarecrow"})


class Tracer:
    """Attachable event recorder; usable as a context manager."""

    def __init__(self, machine: Machine, label: str = "trace",
                 categories: Optional[Iterable[str]] = None,
                 include_api_calls: bool = False) -> None:
        self.machine = machine
        self.trace = Trace(label)
        self._categories: Set[str] = set(categories or DEFAULT_CATEGORIES)
        if include_api_calls:
            self._categories.add("api")
        self._unsubscribe = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Tracer":
        if self._unsubscribe is None:
            self._unsubscribe = self.machine.bus.subscribe(self._on_event)
        return self

    def stop(self) -> Trace:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        return self.trace

    def __enter__(self) -> "Tracer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._unsubscribe is not None

    # -- collection -----------------------------------------------------------

    def _on_event(self, event: KernelEvent) -> None:
        if event.category in self._categories:
            self.trace.append(event)
