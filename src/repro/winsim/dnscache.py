"""Resolver cache of the simulated machine.

The top wear-and-tear artifact in Miramirkhani et al. is
``dnscacheEntries`` — the number of entries ``DnsGetCacheDataTable``
returns. Browsing users accumulate hundreds of cached names; a sandbox
that has resolved almost nothing has a near-empty cache. Scarecrow's
wear-and-tear extension truncates the returned table to 4 entries.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List


@dataclasses.dataclass(frozen=True)
class DnsCacheEntry:
    name: str
    record_type: int = 1  # A record
    ttl: int = 300


class DnsCache:
    """Ordered DNS cache (most recent last)."""

    def __init__(self) -> None:
        self._entries: List[DnsCacheEntry] = []
        #: Mutation generation: advances on every cache change (and on
        #: restore), the dirty-set signal delta-restore compares.
        self.mutations = 0

    def add(self, name: str, record_type: int = 1, ttl: int = 300) -> None:
        entry = DnsCacheEntry(name.lower(), record_type, ttl)
        # Re-resolving moves the entry to most-recent position.
        self._entries = [e for e in self._entries if e.name != entry.name]
        self._entries.append(entry)
        self.mutations += 1

    def populate(self, names: Iterable[str]) -> None:
        for name in names:
            self.add(name)

    def entries(self) -> List[DnsCacheEntry]:
        return list(self._entries)

    def recent(self, limit: int) -> List[DnsCacheEntry]:
        return self._entries[-limit:] if limit > 0 else []

    def count(self) -> int:
        return len(self._entries)

    def flush(self) -> None:
        if self._entries:
            self.mutations += 1
        self._entries.clear()

    def snapshot(self) -> dict:
        return {"entries": list(self._entries)}

    def restore(self, state: dict) -> None:
        self._entries = list(state["entries"])
        self.mutations += 1
