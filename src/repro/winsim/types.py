"""Core value types shared by the simulated Windows substrate.

These mirror the C structures evasive malware inspects — ``MEMORYSTATUSEX``,
``SYSTEM_INFO``, the PEB — plus the handle machinery that the simulated
kernel uses to hand object references to user code.
"""

from __future__ import annotations

import dataclasses
import itertools
import pickle
from typing import Any, Dict, Iterator, Optional

#: Handle value returned for invalid handles, as on Windows.
INVALID_HANDLE_VALUE = -1

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclasses.dataclass(frozen=True)
class Handle:
    """An opaque kernel-object handle.

    ``kind`` records what namespace the handle belongs to (``"key"``,
    ``"file"``, ``"process"``, ``"event_query"``...); the kernel-side table
    maps ``value`` back to the live object.
    """

    value: int
    kind: str

    def __bool__(self) -> bool:
        return self.value != INVALID_HANDLE_VALUE

    def __index__(self) -> int:
        return self.value


class HandleTable:
    """Per-machine table mapping handle values to kernel objects."""

    def __init__(self) -> None:
        self._counter = itertools.count(4)  # low values reserved, as on NT
        self._objects: Dict[int, Any] = {}
        self._kinds: Dict[int, str] = {}

    def open(self, obj: Any, kind: str) -> Handle:
        """Register ``obj`` and return a fresh handle of ``kind``."""
        value = next(self._counter) * 4  # NT handles are multiples of 4
        self._objects[value] = obj
        self._kinds[value] = kind
        return Handle(value, kind)

    def resolve(self, handle: Handle, kind: Optional[str] = None) -> Any:
        """Return the object behind ``handle`` or ``None`` if stale/invalid."""
        if not isinstance(handle, Handle) or handle.value not in self._objects:
            return None
        if kind is not None and self._kinds.get(handle.value) != kind:
            return None
        return self._objects[handle.value]

    def close(self, handle: Handle) -> bool:
        """Close ``handle``; returns ``False`` when it was not open."""
        if not isinstance(handle, Handle):
            return False
        self._kinds.pop(handle.value, None)
        return self._objects.pop(handle.value, None) is not None

    def live_count(self) -> int:
        """Number of currently-open handles (used by leak-checking tests)."""
        return len(self._objects)

    # -- snapshot / restore ---------------------------------------------------

    def snapshot(self) -> bytes:
        """Deep snapshot of the table (counter position included) as a blob.

        ``itertools.count`` pickles its current position, so a restored
        table hands out the exact same handle values a fresh one would —
        which keeps templated runs byte-identical to fresh-factory runs.
        """
        return pickle.dumps((self._counter, self._objects, self._kinds),
                            protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, blob: bytes) -> None:
        """Reinstate a :meth:`snapshot`; safe to call repeatedly."""
        self._counter, self._objects, self._kinds = pickle.loads(blob)

    def __iter__(self) -> Iterator[int]:
        return iter(self._objects)


@dataclasses.dataclass
class MemoryStatusEx:
    """Mirror of ``MEMORYSTATUSEX`` as filled by ``GlobalMemoryStatusEx``."""

    total_phys: int
    avail_phys: int
    memory_load: int = 0
    total_page_file: int = 0
    avail_page_file: int = 0
    total_virtual: int = 2 * GIB
    avail_virtual: int = 2 * GIB

    def __post_init__(self) -> None:
        if self.total_page_file == 0:
            self.total_page_file = self.total_phys * 2
        if self.avail_page_file == 0:
            self.avail_page_file = self.avail_phys * 2
        if self.memory_load == 0 and self.total_phys:
            used = self.total_phys - self.avail_phys
            self.memory_load = max(0, min(100, round(100 * used / self.total_phys)))


@dataclasses.dataclass
class SystemInfo:
    """Mirror of ``SYSTEM_INFO`` as filled by ``GetSystemInfo``."""

    number_of_processors: int
    processor_architecture: int = 9  # PROCESSOR_ARCHITECTURE_AMD64
    page_size: int = 4096
    allocation_granularity: int = 64 * KIB


@dataclasses.dataclass
class OsVersionInfo:
    """Mirror of ``OSVERSIONINFOEX`` (enough for version gating)."""

    major: int = 6
    minor: int = 1  # Windows 7
    build: int = 7601
    service_pack: str = "Service Pack 1"
    product_name: str = "Windows 7 Professional"

    @property
    def is_windows7(self) -> bool:
        return (self.major, self.minor) == (6, 1)

    @property
    def is_windows8_or_later(self) -> bool:
        return (self.major, self.minor) >= (6, 2)


@dataclasses.dataclass
class Peb:
    """Process Environment Block — the fields evasive malware reads directly.

    The paper's single Table I failure (sample ``cbdda64``) read
    ``NumberOfProcessors`` straight out of the PEB, bypassing every API hook.
    We reproduce that bypass: PEB reads never route through
    :mod:`repro.winapi`, so Scarecrow cannot intercept them.
    """

    being_debugged: bool = False
    number_of_processors: int = 1
    nt_global_flag: int = 0
    image_base_address: int = 0x400000
    os_major_version: int = 6
    os_minor_version: int = 1
    process_parameters_command_line: str = ""

    # Heap flags consulted by anti-debug checks: debugged processes get
    # HEAP_TAIL_CHECKING_ENABLED | HEAP_FREE_CHECKING_ENABLED etc.
    heap_flags: int = 0x00000002  # HEAP_GROWABLE only, for normal processes
    heap_force_flags: int = 0


@dataclasses.dataclass(frozen=True)
class FileBasicInformation:
    """Subset of ``FILE_BASIC_INFORMATION`` for ``NtQueryAttributesFile``."""

    attributes: int
    creation_time: int
    last_write_time: int


def format_mac(raw: bytes) -> str:
    """Render a 6-byte MAC address as ``AA:BB:CC:DD:EE:FF``."""
    if len(raw) != 6:
        raise ValueError(f"MAC must be 6 bytes, got {len(raw)}")
    return ":".join(f"{b:02X}" for b in raw)


def parse_mac(text: str) -> bytes:
    """Parse ``AA:BB:CC:DD:EE:FF`` (or ``-`` separated) into 6 raw bytes."""
    parts = text.replace("-", ":").split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {text!r}")
    return bytes(int(p, 16) for p in parts)
