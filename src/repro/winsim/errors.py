"""Windows status and error codes used throughout the simulated substrate.

The simulated Win32 layer (:mod:`repro.winapi`) mirrors the real API
convention: Win32 functions return ``ERROR_*`` codes (``ERROR_SUCCESS`` on
success) while native (``Nt*``) functions return ``STATUS_*`` NTSTATUS
values. Evasive malware branches on these exact values — e.g. a registry
probe treats ``ERROR_SUCCESS`` from ``RegOpenKeyEx`` on a VirtualBox key as
proof of a VM — so we reproduce the numeric constants faithfully.
"""

from __future__ import annotations

import enum


class Win32Error(enum.IntEnum):
    """Win32 last-error / return codes (subset relevant to fingerprinting)."""

    ERROR_SUCCESS = 0
    ERROR_FILE_NOT_FOUND = 2
    ERROR_PATH_NOT_FOUND = 3
    ERROR_ACCESS_DENIED = 5
    ERROR_INVALID_HANDLE = 6
    ERROR_NOT_ENOUGH_MEMORY = 8
    ERROR_INVALID_PARAMETER = 87
    ERROR_INSUFFICIENT_BUFFER = 122
    ERROR_MORE_DATA = 234
    ERROR_NO_MORE_ITEMS = 259
    ERROR_SERVICE_DOES_NOT_EXIST = 1060
    ERROR_NOT_FOUND = 1168


class NtStatus(enum.IntEnum):
    """NTSTATUS values (subset relevant to fingerprinting)."""

    STATUS_SUCCESS = 0x00000000
    STATUS_BUFFER_OVERFLOW = 0x80000005
    STATUS_NO_MORE_ENTRIES = 0x8000001A
    STATUS_INFO_LENGTH_MISMATCH = 0xC0000004
    STATUS_ACCESS_VIOLATION = 0xC0000005
    STATUS_INVALID_HANDLE = 0xC0000008
    STATUS_INVALID_PARAMETER = 0xC000000D
    STATUS_NO_SUCH_FILE = 0xC000000F
    STATUS_ACCESS_DENIED = 0xC0000022
    STATUS_BUFFER_TOO_SMALL = 0xC0000023
    STATUS_OBJECT_NAME_NOT_FOUND = 0xC0000034
    STATUS_OBJECT_PATH_NOT_FOUND = 0xC000003A
    STATUS_NOT_IMPLEMENTED = 0xC0000002


def nt_success(status: int) -> bool:
    """Return ``True`` when an NTSTATUS value denotes success.

    Mirrors the ``NT_SUCCESS`` macro: success and informational severities
    (high bit clear, top two bits not ``0b10``... in practice status < 0x8000_0000).
    """
    return 0 <= int(status) < 0x80000000


def nt_information(status: int) -> bool:
    """Return ``True`` for warning-severity NTSTATUS values (0x8000_xxxx)."""
    return 0x80000000 <= int(status) < 0xC0000000


def nt_error(status: int) -> bool:
    """Return ``True`` for error-severity NTSTATUS values (0xC000_xxxx)."""
    return int(status) >= 0xC0000000


class WinsimError(Exception):
    """Base class for errors raised by the simulated substrate itself.

    These indicate *simulation* misuse (e.g. operating on a dead process
    object from test code), never conditions a simulated program observes;
    simulated programs observe ``Win32Error`` / ``NtStatus`` return values.
    """


class InvalidHandleError(WinsimError):
    """A handle value did not resolve to a live kernel object."""


class SnapshotError(WinsimError):
    """Snapshot/restore (Deep Freeze) failed, e.g. restoring a foreign snapshot."""
