"""Hardware model of the simulated machine: CPU, memory, firmware strings.

This is where the CPU-level fingerprints live:

* **CPUID leaf 1, ECX bit 31** — the hypervisor-present bit. Physical CPUs
  report 0; hypervisors report 1 (unless masked, which both VMware and
  VirtualBox support and which we expose as ``mask_hypervisor_bit``).
* **CPUID leaf 0x40000000** — the hypervisor vendor string
  (``VBoxVBoxVBox``, ``VMwareVMware``, ``KVMKVMKVM``...).
* **RDTSC deltas around CPUID** — the VM-exit timing probe; the cost model
  lives in :class:`repro.winsim.clock.TimingProfile`, this module only says
  whether CPUID traps.

Memory and disk sizes are *hardware resources* in the paper's taxonomy —
Scarecrow fakes them at the API layer (disk 50GB, RAM 1GB, 1 core), so the
true values here stay untouched.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from .types import GIB

#: Hypervisor vendor strings as returned in CPUID leaf 0x40000000.
HV_VENDOR_VBOX = "VBoxVBoxVBox"
HV_VENDOR_VMWARE = "VMwareVMware"
HV_VENDOR_KVM = "KVMKVMKVM"
HV_VENDOR_HYPERV = "Microsoft Hv"
HV_VENDOR_XEN = "XenVMMXenVMM"

KNOWN_HV_VENDORS = (HV_VENDOR_VBOX, HV_VENDOR_VMWARE, HV_VENDOR_KVM,
                    HV_VENDOR_HYPERV, HV_VENDOR_XEN)


@dataclasses.dataclass
class Cpu:
    """CPU identity and virtualization-visible behaviour."""

    vendor: str = "GenuineIntel"
    brand: str = "Intel(R) Core(TM) i5-4590 CPU @ 3.30GHz"
    cores: int = 4
    hypervisor_present: bool = False
    hypervisor_vendor: Optional[str] = None
    #: VMM-level masking of the hypervisor bit / vendor leaf (the
    #: "easily manipulated" countermeasure Table II's discussion mentions).
    mask_hypervisor_bit: bool = False
    #: Whether CPUID causes a VM exit (drives the rdtsc_diff_vmexit probe).
    cpuid_traps: bool = False

    def cpuid(self, leaf: int) -> Dict[str, int]:
        """Execute CPUID; returns the EAX/EBX/ECX/EDX register dict.

        Only the leaves fingerprinting cares about are modelled; other
        leaves return zeros, as safe defaults.
        """
        if leaf == 0:
            return {"eax": 0x16, **_pack_vendor_leaf0(self.vendor)}
        if leaf == 1:
            hv_visible = self.hypervisor_present and not self.mask_hypervisor_bit
            ecx = (1 << 31) if hv_visible else 0
            return {"eax": 0x306C3, "ebx": 0, "ecx": ecx, "edx": 0}
        if leaf == 0x40000000:
            if self.hypervisor_present and not self.mask_hypervisor_bit \
                    and self.hypervisor_vendor:
                return {"eax": 0x40000001,
                        **_pack_vendor_hv(self.hypervisor_vendor)}
            return {"eax": 0, "ebx": 0, "ecx": 0, "edx": 0}
        return {"eax": 0, "ebx": 0, "ecx": 0, "edx": 0}

    def hypervisor_vendor_string(self) -> str:
        """Decode leaf 0x40000000 EBX/ECX/EDX into the vendor string."""
        regs = self.cpuid(0x40000000)
        raw = b"".join(regs[r].to_bytes(4, "little")
                       for r in ("ebx", "ecx", "edx"))
        return raw.rstrip(b"\x00").decode("ascii", errors="replace")


def _pack_vendor_leaf0(vendor: str) -> Dict[str, int]:
    padded = vendor.encode("ascii").ljust(12, b"\x00")[:12]
    # Leaf-0 register order is EBX, EDX, ECX.
    return {"ebx": int.from_bytes(padded[0:4], "little"),
            "edx": int.from_bytes(padded[4:8], "little"),
            "ecx": int.from_bytes(padded[8:12], "little")}


def _pack_vendor_hv(vendor: str) -> Dict[str, int]:
    padded = vendor.encode("ascii").ljust(12, b"\x00")[:12]
    # Hypervisor leaf order is EBX, ECX, EDX.
    return {"ebx": int.from_bytes(padded[0:4], "little"),
            "ecx": int.from_bytes(padded[4:8], "little"),
            "edx": int.from_bytes(padded[8:12], "little")}


@dataclasses.dataclass
class Firmware:
    """SMBIOS/ACPI strings surfaced through the registry by builders."""

    bios_version: str = "DELL   - 1072009"
    system_manufacturer: str = "Dell Inc."
    system_product: str = "OptiPlex 9020"
    video_bios_version: str = "Intel Video BIOS"
    scsi_identifier: Optional[str] = None  # e.g. "VBOX HARDDISK"


@dataclasses.dataclass
class Hardware:
    """Aggregate hardware state."""

    cpu: Cpu = dataclasses.field(default_factory=Cpu)
    firmware: Firmware = dataclasses.field(default_factory=Firmware)
    total_ram: int = 8 * GIB
    available_ram: int = 5 * GIB

    def snapshot(self) -> dict:
        return {
            "cpu": dataclasses.replace(self.cpu),
            "firmware": dataclasses.replace(self.firmware),
            "total_ram": self.total_ram,
            "available_ram": self.available_ram,
        }

    def restore(self, state: dict) -> None:
        self.cpu = dataclasses.replace(state["cpu"])
        self.firmware = dataclasses.replace(state["firmware"])
        self.total_ram = state["total_ram"]
        self.available_ram = state["available_ram"]
