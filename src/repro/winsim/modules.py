"""Per-process loaded-module (DLL) tracking.

Evasive malware calls ``GetModuleHandleA("SbieDll.dll")`` and friends to see
whether sandbox or analysis DLLs are mapped into its address space. Each
module also owns a synthetic base address so injected code (scarecrow.dll)
occupies a believable place in the module list.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional


@dataclasses.dataclass
class Module:
    """One mapped image in a process address space."""

    name: str          # e.g. "kernel32.dll"
    path: str          # e.g. "C:\\Windows\\System32\\kernel32.dll"
    base_address: int
    size: int = 0x10000

    def contains(self, address: int) -> bool:
        return self.base_address <= address < self.base_address + self.size


class ModuleList:
    """Ordered module list of a single process (mimics the PEB Ldr list)."""

    #: Base address where the first non-exe module is mapped; subsequent
    #: modules are packed upward. Arbitrary but stable values make tests
    #: deterministic.
    _FIRST_DLL_BASE = 0x7FF00000

    def __init__(self, exe_name: str, exe_path: str,
                 image_base: int = 0x400000, owner=None) -> None:
        self._modules: List[Module] = [
            Module(exe_name, exe_path, image_base, size=0x80000)]
        self._next_base = self._FIRST_DLL_BASE
        #: Owning process (when any): module loads/unloads report to its
        #: table's dirty-pid journal, like every other process mutation.
        self._owner = owner

    def _notify(self) -> None:
        owner = self._owner
        if owner is not None:
            owner._bump()

    def load(self, name: str, path: Optional[str] = None,
             size: int = 0x40000) -> Module:
        """Map ``name`` (idempotent: re-loading returns the existing module)."""
        existing = self.find(name)
        if existing is not None:
            return existing
        module = Module(name, path or f"C:\\Windows\\System32\\{name}",
                        self._next_base, size)
        self._next_base += max(size, 0x10000)
        self._modules.append(module)
        self._notify()
        return module

    def unload(self, name: str) -> bool:
        module = self.find(name)
        if module is None or module is self._modules[0]:
            return False
        self._modules.remove(module)
        self._notify()
        return True

    def find(self, name: str) -> Optional[Module]:
        """Look a module up by name (case-insensitive, ``.dll`` optional)."""
        wanted = name.lower()
        candidates = {wanted}
        if not wanted.endswith(".dll") and "." not in wanted:
            candidates.add(wanted + ".dll")
        for module in self._modules:
            if module.name.lower() in candidates:
                return module
        return None

    def is_loaded(self, name: str) -> bool:
        return self.find(name) is not None

    def module_at(self, address: int) -> Optional[Module]:
        for module in self._modules:
            if module.contains(address):
                return module
        return None

    def names(self) -> List[str]:
        return [m.name for m in self._modules]

    @property
    def executable(self) -> Module:
        return self._modules[0]

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules)


#: Modules every Windows process maps at startup.
DEFAULT_SYSTEM_MODULES = (
    "ntdll.dll",
    "kernel32.dll",
    "KernelBase.dll",
    "advapi32.dll",
    "user32.dll",
    "gdi32.dll",
    "msvcrt.dll",
    "rpcrt4.dll",
    "sechost.dll",
    "ws2_32.dll",
)


def populate_default_modules(modules: ModuleList) -> None:
    """Load the standard system DLL set into a fresh process."""
    for name in DEFAULT_SYSTEM_MODULES:
        modules.load(name)
