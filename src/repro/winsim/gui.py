"""GUI window manager surface for the simulated machine.

``FindWindow`` over debugger window classes (``OLLYDBG``, ``WinDbgFrameClass``)
is a classic anti-debug probe; Scarecrow registers deceptive windows so the
probe *succeeds* on a protected end-user machine. We also model cursor
position history so Pafish's mouse-activity check has something to read.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple


@dataclasses.dataclass
class Window:
    """A top-level window: class name + title, owned by a pid."""

    hwnd: int
    class_name: Optional[str]
    title: Optional[str]
    owner_pid: int = 0
    visible: bool = True


class WindowManager:
    """Registry of top-level windows plus input-activity state."""

    def __init__(self) -> None:
        self._windows: List[Window] = []
        #: Next hwnd to hand out. A plain int (not itertools.count) so
        #: snapshot/restore covers it: a restored machine must mint the
        #: same hwnd sequence as a fresh one, or window handles diverge
        #: between templated and fresh runs.
        self._next_hwnd = 0x10010
        self._cursor: Tuple[int, int] = (0, 0)
        self._cursor_moves = 0
        self._humanized = False
        #: Mutation generation: advances on every window/input change
        #: (and on restore), the dirty-set signal delta-restore compares.
        self.mutations = 0

    @property
    def humanized(self) -> bool:
        """When set, a human (or a Cuckoo "human" auxiliary module) is
        moving the mouse: cursor position becomes a function of time, so
        two reads separated by a sleep observe movement."""
        return self._humanized

    @humanized.setter
    def humanized(self, value: bool) -> None:
        if value != self._humanized:
            self.mutations += 1
        self._humanized = value

    # -- windows ---------------------------------------------------------------

    def create_window(self, class_name: Optional[str], title: Optional[str],
                      owner_pid: int = 0, visible: bool = True) -> Window:
        window = Window(self._next_hwnd, class_name, title,
                        owner_pid, visible)
        self._next_hwnd += 2
        self._windows.append(window)
        self.mutations += 1
        return window

    def destroy_window(self, hwnd: int) -> bool:
        for window in self._windows:
            if window.hwnd == hwnd:
                self._windows.remove(window)
                self.mutations += 1
                return True
        return False

    def find_window(self, class_name: Optional[str] = None,
                    title: Optional[str] = None) -> Optional[Window]:
        """``FindWindow`` semantics: match class and/or title, first hit wins.

        ``None`` for either argument is a wildcard, as in the real API.
        """
        for window in self._windows:
            if class_name is not None:
                if window.class_name is None or \
                        window.class_name.lower() != class_name.lower():
                    continue
            if title is not None:
                if window.title is None or \
                        window.title.lower() != title.lower():
                    continue
            return window
        return None

    def windows(self) -> List[Window]:
        return list(self._windows)

    def windows_for_pid(self, pid: int) -> List[Window]:
        return [w for w in self._windows if w.owner_pid == pid]

    # -- input activity ---------------------------------------------------------

    @property
    def cursor_pos(self) -> Tuple[int, int]:
        return self._cursor

    def move_cursor(self, x: int, y: int) -> None:
        if (x, y) != self._cursor:
            self._cursor_moves += 1
            self.mutations += 1
        self._cursor = (x, y)

    @property
    def cursor_move_count(self) -> int:
        return self._cursor_moves

    # -- snapshot ---------------------------------------------------------------

    def cursor_at_time(self, now_ns: int) -> Tuple[int, int]:
        """Cursor position for humanized sessions (moves every ~50 ms)."""
        if not self.humanized:
            return self._cursor
        return (int(now_ns // 50_000_000) % 800,
                int(now_ns // 70_000_000) % 600)

    def snapshot(self) -> dict:
        return {
            "windows": [dataclasses.replace(w) for w in self._windows],
            "next_hwnd": self._next_hwnd,
            "cursor": self._cursor,
            "moves": self._cursor_moves,
            "humanized": self.humanized,
        }

    def restore(self, state: dict) -> None:
        self._windows = [dataclasses.replace(w) for w in state["windows"]]
        self._next_hwnd = state.get("next_hwnd", 0x10010)
        self._cursor = state["cursor"]
        self._cursor_moves = state["moves"]
        self._humanized = state.get("humanized", False)
        self.mutations += 1
