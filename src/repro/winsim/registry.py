"""Hierarchical registry hive for the simulated machine.

The registry is the single richest fingerprinting surface in the paper:
VM guest-additions keys, BIOS strings carrying ``VBOX``/``VMware``, IDE
device enumerations, and all of the wear-and-tear registry artifacts
(Run entries, Uninstall entries, SharedDlls, UserAssist, MUICache,
AppCompatCache, firewall rules, USBStor history...).

Paths are case-insensitive and backslash-separated, as on Windows. Keys
hold named values; values carry a REG_* type tag plus data.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, Iterator, List, Optional, Union

RegData = Union[str, int, bytes, List[str]]


class RegType(enum.IntEnum):
    """Registry value types (subset)."""

    REG_NONE = 0
    REG_SZ = 1
    REG_EXPAND_SZ = 2
    REG_BINARY = 3
    REG_DWORD = 4
    REG_MULTI_SZ = 7
    REG_QWORD = 11


#: Canonical hive names. ``HKCU`` is modelled per-machine (single user).
HIVES = ("HKEY_LOCAL_MACHINE", "HKEY_CURRENT_USER", "HKEY_CLASSES_ROOT", "HKEY_USERS")

_HIVE_ALIASES = {
    "HKLM": "HKEY_LOCAL_MACHINE",
    "HKCU": "HKEY_CURRENT_USER",
    "HKCR": "HKEY_CLASSES_ROOT",
    "HKU": "HKEY_USERS",
}


def split_path(path: str) -> List[str]:
    """Split a registry path into normalized components."""
    parts = [p for p in path.replace("/", "\\").split("\\") if p]
    if parts and parts[0].upper() in _HIVE_ALIASES:
        parts[0] = _HIVE_ALIASES[parts[0].upper()]
    return parts


def default_type_for(data: RegData) -> RegType:
    """Infer a REG_* type from a Python value."""
    if isinstance(data, str):
        return RegType.REG_SZ
    if isinstance(data, bool) or isinstance(data, int):
        return RegType.REG_DWORD
    if isinstance(data, bytes):
        return RegType.REG_BINARY
    if isinstance(data, list):
        return RegType.REG_MULTI_SZ
    raise TypeError(f"unsupported registry data type: {type(data)!r}")


@dataclasses.dataclass
class RegistryValue:
    """A single named value under a key."""

    name: str
    data: RegData
    type: RegType


def _load_subtree(node: "RegistryKey", blob: dict) -> None:
    """Populate ``node`` from a snapshot blob, bypassing mutation
    bookkeeping (callers detach the owner / rebuild detached subtrees).
    Values and children land in snapshot order, which is what keeps a
    spliced subtree byte-identical to a fully rebuilt one."""
    for name, data, type_ in blob["values"]:
        node._values[name.lower()] = RegistryValue(name, data,
                                                   RegType(type_))
    for child_blob in blob["children"]:
        child = RegistryKey(child_blob["name"], parent=node)
        node._children[child_blob["name"].lower()] = child
        _load_subtree(child, child_blob)


class RegistryKey:
    """One key node: case-insensitive children plus named values."""

    def __init__(self, name: str, parent: Optional["RegistryKey"] = None) -> None:
        self.name = name
        self.parent = parent
        self._children: Dict[str, RegistryKey] = {}  # lower-case -> key
        self._values: Dict[str, RegistryValue] = {}  # lower-case -> value

    def _bump(self, child: Optional[str] = None) -> None:
        """Advance the owning registry's mutation generation, if any.

        Keys materialized outside a hive (the deception engine's
        standalone ghost chains) have no owning :class:`Registry` at their
        root and record nothing. Alongside the counter the owner journals
        the dirty key path — this key's own path for value changes, the
        affected child's path (``child``) for structural changes — which
        is what lets :meth:`Registry.restore` rewind only the touched
        subtrees.
        """
        parts = [] if child is None else [child]
        node: RegistryKey = self
        while node.parent is not None:
            parts.append(node.name.lower())
            node = node.parent
        owner = getattr(node, "_owner", None)
        if owner is not None:
            owner.mutations += 1
            owner._journal(tuple(reversed(parts)))

    # -- structure ---------------------------------------------------------

    def child(self, name: str) -> Optional["RegistryKey"]:
        return self._children.get(name.lower())

    def ensure_child(self, name: str) -> "RegistryKey":
        key = self._children.get(name.lower())
        if key is None:
            key = RegistryKey(name, parent=self)
            self._children[name.lower()] = key
            self._bump(child=name.lower())
        return key

    def remove_child(self, name: str) -> bool:
        removed = self._children.pop(name.lower(), None) is not None
        if removed:
            self._bump(child=name.lower())
        return removed

    def subkey_names(self) -> List[str]:
        """Child key names in stable (insertion) order."""
        return [k.name for k in self._children.values()]

    def subkey_count(self) -> int:
        return len(self._children)

    # -- values ------------------------------------------------------------

    def set_value(self, name: str, data: RegData,
                  type_: Optional[RegType] = None) -> None:
        self._values[name.lower()] = RegistryValue(
            name, data, type_ if type_ is not None else default_type_for(data))
        self._bump()

    def get_value(self, name: str) -> Optional[RegistryValue]:
        return self._values.get(name.lower())

    def delete_value(self, name: str) -> bool:
        removed = self._values.pop(name.lower(), None) is not None
        if removed:
            self._bump()
        return removed

    def value_names(self) -> List[str]:
        return [v.name for v in self._values.values()]

    def value_count(self) -> int:
        return len(self._values)

    def values(self) -> List[RegistryValue]:
        return list(self._values.values())

    # -- misc ----------------------------------------------------------------

    def path(self) -> str:
        parts: List[str] = []
        node: Optional[RegistryKey] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        if node is not None and node.name:
            parts.append(node.name)
        return "\\".join(reversed(parts))

    def walk(self) -> Iterator["RegistryKey"]:
        """Depth-first traversal of this key and every descendant."""
        yield self
        for child in list(self._children.values()):
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RegistryKey {self.path()!r} keys={len(self._children)} values={len(self._values)}>"


#: Dirty-path journal capacity. A job that touches more key paths than
#: this gets a full hive rebuild on restore — beyond a few dozen subtree
#: splices the full rebuild is competitive anyway, and an unbounded
#: journal would let a pathological job hoard memory.
_JOURNAL_CAP = 64


class Registry:
    """A full registry: four hives of :class:`RegistryKey` trees."""

    def __init__(self) -> None:
        self._root = RegistryKey("")
        #: Bulk hive bytes not represented by individual simulated entries
        #: (a real hive holds hundreds of thousands of keys; simulating the
        #: interesting ones and padding the rest keeps builds fast while
        #: the ``regSize`` wear-and-tear artifact stays meaningful).
        self.bulk_padding_bytes = 0
        #: Mutation generation: advances on every structural or value
        #: change (and on restore), the dirty-set signal delta-restore
        #: (:class:`repro.parallel.template.MachineTemplate`) compares.
        self.mutations = 0
        #: Dirty key paths since the last :meth:`restore` (lower-cased
        #: part tuples), or None when the journal cannot vouch for the
        #: divergence (never restored yet, or overflowed ``_JOURNAL_CAP``).
        self._dirty_paths: Optional[set] = None
        #: The exact state dict the last restore rewound to. Path-granular
        #: restore is only sound when rewinding to the *same* state the
        #: journal diverged from, checked by identity.
        self._last_restored_state: Optional[dict] = None
        self._root._owner = self
        for hive in HIVES:
            self._root.ensure_child(hive)

    def _journal(self, parts: tuple) -> None:
        """Record a dirty key path (or invalidate on overflow)."""
        journal = self._dirty_paths
        if journal is None:
            return
        if not parts:
            self._dirty_paths = None
            return
        journal.add(parts)
        if len(journal) > _JOURNAL_CAP:
            self._dirty_paths = None

    # -- resolution ----------------------------------------------------------

    def open_key(self, path: str) -> Optional[RegistryKey]:
        """Resolve ``path`` to a key, or ``None`` when absent."""
        node = self._root
        for part in split_path(path):
            nxt = node.child(part)
            if nxt is None:
                return None
            node = nxt
        return node if node is not self._root else None

    def key_exists(self, path: str) -> bool:
        return self.open_key(path) is not None

    def create_key(self, path: str) -> RegistryKey:
        """Create ``path`` (and intermediate keys), returning the leaf."""
        parts = split_path(path)
        if not parts or parts[0] not in HIVES:
            raise ValueError(f"registry path must start with a hive: {path!r}")
        node = self._root
        for part in parts:
            node = node.ensure_child(part)
        return node

    def delete_key(self, path: str) -> bool:
        """Delete the key at ``path`` (with its subtree)."""
        parts = split_path(path)
        if len(parts) < 2:
            return False
        parent = self.open_key("\\".join(parts[:-1]))
        if parent is None:
            return False
        return parent.remove_child(parts[-1])

    # -- value convenience -----------------------------------------------------

    def set_value(self, key_path: str, name: str, data: RegData,
                  type_: Optional[RegType] = None) -> None:
        self.create_key(key_path).set_value(name, data, type_)

    def get_value(self, key_path: str, name: str) -> Optional[RegistryValue]:
        key = self.open_key(key_path)
        return key.get_value(name) if key is not None else None

    def get_data(self, key_path: str, name: str,
                 default: Optional[RegData] = None) -> Optional[RegData]:
        value = self.get_value(key_path, name)
        return value.data if value is not None else default

    # -- search / stats ----------------------------------------------------

    def iter_all_keys(self) -> Iterator[RegistryKey]:
        for hive in HIVES:
            root = self._root.child(hive)
            assert root is not None
            yield from root.walk()

    def find_keys(self, predicate: Callable[[RegistryKey], bool]) -> List[RegistryKey]:
        return [key for key in self.iter_all_keys() if predicate(key)]

    def count_references(self, needle: str) -> int:
        """Count keys/values whose name or string data mentions ``needle``.

        The paper notes "over 300 references in a registry to VMware" on a
        machine with VMware installed; this powers that measurement.
        """
        needle_l = needle.lower()
        count = 0
        for key in self.iter_all_keys():
            if needle_l in key.name.lower():
                count += 1
            for value in key.values():
                if needle_l in value.name.lower():
                    count += 1
                elif isinstance(value.data, str) and needle_l in value.data.lower():
                    count += 1
                elif isinstance(value.data, list) and any(
                        needle_l in item.lower() for item in value.data):
                    count += 1
        return count

    def total_entries(self) -> int:
        """Total number of keys plus values across all hives."""
        keys = 0
        values = 0
        for key in self.iter_all_keys():
            keys += 1
            values += key.value_count()
        return keys + values

    def estimated_size_bytes(self) -> int:
        """Rough hive size, the ``regSize`` wear-and-tear artifact.

        Real hives average a few hundred bytes per entry; we charge name and
        data sizes (plus any bulk padding the environment builder applied)
        so that machines with more installed software report larger hives.
        """
        total = self.bulk_padding_bytes
        for key in self.iter_all_keys():
            total += 96 + 2 * len(key.name)
            for value in key.values():
                total += 48 + 2 * len(value.name)
                if isinstance(value.data, str):
                    total += 2 * len(value.data)
                elif isinstance(value.data, bytes):
                    total += len(value.data)
                elif isinstance(value.data, list):
                    total += sum(2 * len(item) + 2 for item in value.data)
                else:
                    total += 8
        return total

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict:
        def dump(key: RegistryKey) -> dict:
            return {
                "name": key.name,
                "values": [(v.name, v.data, int(v.type)) for v in key.values()],
                "children": [dump(c) for c in key._children.values()],
            }

        return {"tree": dump(self._root),
                "bulk_padding": self.bulk_padding_bytes}

    def restore(self, state: dict) -> None:
        """Rewind the hive to ``state``.

        When the dirty-path journal is intact *and* ``state`` is the same
        dict the previous restore rewound to (identity check — the
        template restores the same captured state every checkout), only
        the journaled subtrees are spliced back; anything else gets the
        full rebuild. Both paths leave the hive — including subkey and
        value insertion order — byte-identical to a full restore.
        """
        journal = self._dirty_paths
        delta_ok = (journal is not None
                    and state is self._last_restored_state)
        # One generation bump for the whole rebuild: detaching the owner
        # keeps the per-entry loads from walking the parent chain ~1400
        # times (which would double the restore cost delta-restore exists
        # to avoid).
        del self._root._owner
        try:
            if delta_ok:
                # Ancestors first: a rebuilt ancestor subtree already
                # contains every descendant, so later (deeper) entries
                # degrade to cheap no-ops.
                for parts in sorted(journal, key=len):
                    self._sync_path(state["tree"], parts)
            else:
                self._load_full(state["tree"])
            self.bulk_padding_bytes = state["bulk_padding"]
            for hive in HIVES:
                self._root.ensure_child(hive)
        finally:
            self._root._owner = self
            self.mutations += 1
        self._last_restored_state = state
        self._dirty_paths = set()

    def _load_full(self, tree_blob: dict) -> None:
        self._root._children.clear()
        self._root._values.clear()
        _load_subtree(self._root, tree_blob)

    def _sync_path(self, tree_blob: dict, parts: tuple) -> None:
        """Make the live tree at ``parts`` match the snapshot exactly."""
        blob: Optional[dict] = tree_blob
        parent_blob = tree_blob
        for part in parts:
            parent_blob = blob
            blob = None
            for child in parent_blob["children"]:
                if child["name"].lower() == part:
                    blob = child
                    break
            if blob is None:
                break
        node = self._root
        for part in parts[:-1]:
            nxt = node.child(part)
            if nxt is None:
                # A journaled ancestor already removed (or will rebuild)
                # this branch; nothing to splice here.
                return
            node = nxt
        last = parts[-1]
        if blob is None:
            node._children.pop(last, None)
            return
        existed = last in node._children
        fresh = RegistryKey(blob["name"], parent=node)
        _load_subtree(fresh, blob)
        node._children[last] = fresh
        if not existed:
            # Re-adding a deleted key appends it to the parent's child
            # dict; full restore would have placed it in snapshot order.
            # Reorder so both paths emit identical snapshots (keys the
            # snapshot does not know keep their relative order at the
            # end until their own journal entries remove them).
            order = {c["name"].lower(): i
                     for i, c in enumerate(parent_blob["children"])}
            big = len(order)
            current = list(node._children)
            rank = {k: (order.get(k, big), i)
                    for i, k in enumerate(current)}
            node._children = {k: node._children[k]
                              for k in sorted(current, key=rank.get)}
