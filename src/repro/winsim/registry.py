"""Hierarchical registry hive for the simulated machine.

The registry is the single richest fingerprinting surface in the paper:
VM guest-additions keys, BIOS strings carrying ``VBOX``/``VMware``, IDE
device enumerations, and all of the wear-and-tear registry artifacts
(Run entries, Uninstall entries, SharedDlls, UserAssist, MUICache,
AppCompatCache, firewall rules, USBStor history...).

Paths are case-insensitive and backslash-separated, as on Windows. Keys
hold named values; values carry a REG_* type tag plus data.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, Iterator, List, Optional, Union

RegData = Union[str, int, bytes, List[str]]


class RegType(enum.IntEnum):
    """Registry value types (subset)."""

    REG_NONE = 0
    REG_SZ = 1
    REG_EXPAND_SZ = 2
    REG_BINARY = 3
    REG_DWORD = 4
    REG_MULTI_SZ = 7
    REG_QWORD = 11


#: Canonical hive names. ``HKCU`` is modelled per-machine (single user).
HIVES = ("HKEY_LOCAL_MACHINE", "HKEY_CURRENT_USER", "HKEY_CLASSES_ROOT", "HKEY_USERS")

_HIVE_ALIASES = {
    "HKLM": "HKEY_LOCAL_MACHINE",
    "HKCU": "HKEY_CURRENT_USER",
    "HKCR": "HKEY_CLASSES_ROOT",
    "HKU": "HKEY_USERS",
}


def split_path(path: str) -> List[str]:
    """Split a registry path into normalized components."""
    parts = [p for p in path.replace("/", "\\").split("\\") if p]
    if parts and parts[0].upper() in _HIVE_ALIASES:
        parts[0] = _HIVE_ALIASES[parts[0].upper()]
    return parts


def default_type_for(data: RegData) -> RegType:
    """Infer a REG_* type from a Python value."""
    if isinstance(data, str):
        return RegType.REG_SZ
    if isinstance(data, bool) or isinstance(data, int):
        return RegType.REG_DWORD
    if isinstance(data, bytes):
        return RegType.REG_BINARY
    if isinstance(data, list):
        return RegType.REG_MULTI_SZ
    raise TypeError(f"unsupported registry data type: {type(data)!r}")


@dataclasses.dataclass
class RegistryValue:
    """A single named value under a key."""

    name: str
    data: RegData
    type: RegType


class RegistryKey:
    """One key node: case-insensitive children plus named values."""

    def __init__(self, name: str, parent: Optional["RegistryKey"] = None) -> None:
        self.name = name
        self.parent = parent
        self._children: Dict[str, RegistryKey] = {}  # lower-case -> key
        self._values: Dict[str, RegistryValue] = {}  # lower-case -> value

    # -- structure ---------------------------------------------------------

    def child(self, name: str) -> Optional["RegistryKey"]:
        return self._children.get(name.lower())

    def ensure_child(self, name: str) -> "RegistryKey":
        key = self._children.get(name.lower())
        if key is None:
            key = RegistryKey(name, parent=self)
            self._children[name.lower()] = key
        return key

    def remove_child(self, name: str) -> bool:
        return self._children.pop(name.lower(), None) is not None

    def subkey_names(self) -> List[str]:
        """Child key names in stable (insertion) order."""
        return [k.name for k in self._children.values()]

    def subkey_count(self) -> int:
        return len(self._children)

    # -- values ------------------------------------------------------------

    def set_value(self, name: str, data: RegData,
                  type_: Optional[RegType] = None) -> None:
        self._values[name.lower()] = RegistryValue(
            name, data, type_ if type_ is not None else default_type_for(data))

    def get_value(self, name: str) -> Optional[RegistryValue]:
        return self._values.get(name.lower())

    def delete_value(self, name: str) -> bool:
        return self._values.pop(name.lower(), None) is not None

    def value_names(self) -> List[str]:
        return [v.name for v in self._values.values()]

    def value_count(self) -> int:
        return len(self._values)

    def values(self) -> List[RegistryValue]:
        return list(self._values.values())

    # -- misc ----------------------------------------------------------------

    def path(self) -> str:
        parts: List[str] = []
        node: Optional[RegistryKey] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        if node is not None and node.name:
            parts.append(node.name)
        return "\\".join(reversed(parts))

    def walk(self) -> Iterator["RegistryKey"]:
        """Depth-first traversal of this key and every descendant."""
        yield self
        for child in list(self._children.values()):
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RegistryKey {self.path()!r} keys={len(self._children)} values={len(self._values)}>"


class Registry:
    """A full registry: four hives of :class:`RegistryKey` trees."""

    def __init__(self) -> None:
        self._root = RegistryKey("")
        #: Bulk hive bytes not represented by individual simulated entries
        #: (a real hive holds hundreds of thousands of keys; simulating the
        #: interesting ones and padding the rest keeps builds fast while
        #: the ``regSize`` wear-and-tear artifact stays meaningful).
        self.bulk_padding_bytes = 0
        for hive in HIVES:
            self._root.ensure_child(hive)

    # -- resolution ----------------------------------------------------------

    def open_key(self, path: str) -> Optional[RegistryKey]:
        """Resolve ``path`` to a key, or ``None`` when absent."""
        node = self._root
        for part in split_path(path):
            nxt = node.child(part)
            if nxt is None:
                return None
            node = nxt
        return node if node is not self._root else None

    def key_exists(self, path: str) -> bool:
        return self.open_key(path) is not None

    def create_key(self, path: str) -> RegistryKey:
        """Create ``path`` (and intermediate keys), returning the leaf."""
        parts = split_path(path)
        if not parts or parts[0] not in HIVES:
            raise ValueError(f"registry path must start with a hive: {path!r}")
        node = self._root
        for part in parts:
            node = node.ensure_child(part)
        return node

    def delete_key(self, path: str) -> bool:
        """Delete the key at ``path`` (with its subtree)."""
        parts = split_path(path)
        if len(parts) < 2:
            return False
        parent = self.open_key("\\".join(parts[:-1]))
        if parent is None:
            return False
        return parent.remove_child(parts[-1])

    # -- value convenience -----------------------------------------------------

    def set_value(self, key_path: str, name: str, data: RegData,
                  type_: Optional[RegType] = None) -> None:
        self.create_key(key_path).set_value(name, data, type_)

    def get_value(self, key_path: str, name: str) -> Optional[RegistryValue]:
        key = self.open_key(key_path)
        return key.get_value(name) if key is not None else None

    def get_data(self, key_path: str, name: str,
                 default: Optional[RegData] = None) -> Optional[RegData]:
        value = self.get_value(key_path, name)
        return value.data if value is not None else default

    # -- search / stats ----------------------------------------------------

    def iter_all_keys(self) -> Iterator[RegistryKey]:
        for hive in HIVES:
            root = self._root.child(hive)
            assert root is not None
            yield from root.walk()

    def find_keys(self, predicate: Callable[[RegistryKey], bool]) -> List[RegistryKey]:
        return [key for key in self.iter_all_keys() if predicate(key)]

    def count_references(self, needle: str) -> int:
        """Count keys/values whose name or string data mentions ``needle``.

        The paper notes "over 300 references in a registry to VMware" on a
        machine with VMware installed; this powers that measurement.
        """
        needle_l = needle.lower()
        count = 0
        for key in self.iter_all_keys():
            if needle_l in key.name.lower():
                count += 1
            for value in key.values():
                if needle_l in value.name.lower():
                    count += 1
                elif isinstance(value.data, str) and needle_l in value.data.lower():
                    count += 1
                elif isinstance(value.data, list) and any(
                        needle_l in item.lower() for item in value.data):
                    count += 1
        return count

    def total_entries(self) -> int:
        """Total number of keys plus values across all hives."""
        keys = 0
        values = 0
        for key in self.iter_all_keys():
            keys += 1
            values += key.value_count()
        return keys + values

    def estimated_size_bytes(self) -> int:
        """Rough hive size, the ``regSize`` wear-and-tear artifact.

        Real hives average a few hundred bytes per entry; we charge name and
        data sizes (plus any bulk padding the environment builder applied)
        so that machines with more installed software report larger hives.
        """
        total = self.bulk_padding_bytes
        for key in self.iter_all_keys():
            total += 96 + 2 * len(key.name)
            for value in key.values():
                total += 48 + 2 * len(value.name)
                if isinstance(value.data, str):
                    total += 2 * len(value.data)
                elif isinstance(value.data, bytes):
                    total += len(value.data)
                elif isinstance(value.data, list):
                    total += sum(2 * len(item) + 2 for item in value.data)
                else:
                    total += 8
        return total

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict:
        def dump(key: RegistryKey) -> dict:
            return {
                "name": key.name,
                "values": [(v.name, v.data, int(v.type)) for v in key.values()],
                "children": [dump(c) for c in key._children.values()],
            }

        return {"tree": dump(self._root),
                "bulk_padding": self.bulk_padding_bytes}

    def restore(self, state: dict) -> None:
        def load(node: RegistryKey, blob: dict) -> None:
            node._children.clear()
            node._values.clear()
            for name, data, type_ in blob["values"]:
                node.set_value(name, data, RegType(type_))
            for child_blob in blob["children"]:
                child = node.ensure_child(child_blob["name"])
                load(child, child_blob)

        load(self._root, state["tree"])
        self.bulk_padding_bytes = state["bulk_padding"]
        for hive in HIVES:
            self._root.ensure_child(hive)
