"""The :class:`Machine` aggregate — one simulated Windows host.

A ``Machine`` bundles every subsystem (registry, filesystem, processes,
GUI, devices, services, event log, DNS cache, network, hardware, clock)
plus a handle table, and supports whole-state snapshot/restore (the Deep
Freeze substitute used between experiment runs).

Environment builders in :mod:`repro.analysis.environments` produce machines
in three flavours matching the paper's testbeds: bare-metal sandbox,
Cuckoo-on-VirtualBox sandbox, and an actively-used end-user host.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .bus import EventBus
from .clock import TimingProfile, VirtualClock
from .devices import DeviceNamespace
from .dnscache import DnsCache
from .eventlog import EventLog
from .filesystem import FileSystem
from .gui import WindowManager
from .hardware import Hardware
from .mutexes import MutexNamespace
from .network import NetworkStack
from .process import Process, ProcessTable, populate_baseline
from .registry import Registry
from .services import ServiceManager
from .types import HandleTable, MemoryStatusEx, OsVersionInfo, SystemInfo


@dataclasses.dataclass
class MachineIdentity:
    hostname: str = "DESKTOP-1"
    username: str = "user"
    domain: str = "WORKGROUP"


#: Subsystems that carry a ``mutations`` generation counter and can be
#: restored selectively (dirty-set delta-restore). Order matters: it is
#: the order :meth:`Machine.restore` has always used, preserved so a
#: partial restore interleaves identically with a full one.
TRACKED_SUBSYSTEMS = ("registry", "filesystem", "gui", "devices",
                      "mutexes", "services", "eventlog", "dnscache",
                      "network")


class Machine:
    """One simulated Windows host."""

    def __init__(self, identity: Optional[MachineIdentity] = None,
                 timing: Optional[TimingProfile] = None,
                 boot_tick_ms: int = 19_237_512) -> None:
        self.identity = identity or MachineIdentity()
        self.os_version = OsVersionInfo()
        self.clock = VirtualClock(timing, boot_tick_ms=boot_tick_ms)
        self.registry = Registry()
        self.filesystem = FileSystem()
        self.processes = ProcessTable()
        self.gui = WindowManager()
        self.devices = DeviceNamespace()
        self.mutexes = MutexNamespace()
        self.services = ServiceManager()
        self.eventlog = EventLog()
        self.dnscache = DnsCache()
        self.network = NetworkStack()
        self.hardware = Hardware()
        self.handles = HandleTable()
        self.bus = EventBus()
        self.explorer: Optional[Process] = None
        self.processes.on_create(self._publish_process_create)
        self.processes.on_terminate(self._publish_process_terminate)

    def _publish_process_create(self, process: Process) -> None:
        self.bus.emit("process", "CreateProcess", process.pid,
                      self.clock.now_ns, name=process.name,
                      image=process.image_path, ppid=process.parent_pid)

    def _publish_process_terminate(self, process: Process) -> None:
        self.bus.emit("process", "TerminateProcess", process.pid,
                      self.clock.now_ns, name=process.name,
                      exit_code=process.exit_code)

    # -- provisioning -------------------------------------------------------

    def boot(self) -> "Machine":
        """Create the baseline OS state (process tree, system dirs, hives)."""
        self.explorer = populate_baseline(self.processes)
        fs = self.filesystem
        if fs.drive("C:") is None:
            from .types import GIB
            fs.add_drive("C:", total_bytes=256 * GIB, used_bytes_base=30 * GIB)
        for directory in ("C:\\Windows\\System32", "C:\\Windows\\Temp",
                          "C:\\Program Files", "C:\\Program Files (x86)",
                          f"C:\\Users\\{self.identity.username}\\Desktop",
                          f"C:\\Users\\{self.identity.username}\\Documents",
                          f"C:\\Users\\{self.identity.username}\\AppData\\Local\\Temp"):
            fs.makedirs(directory)
        reg = self.registry
        reg.set_value("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion",
                      "ProductName", self.os_version.product_name)
        reg.set_value("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion",
                      "CurrentVersion",
                      f"{self.os_version.major}.{self.os_version.minor}")
        reg.set_value("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
                      "SystemBiosVersion", self.hardware.firmware.bios_version)
        reg.set_value("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
                      "VideoBiosVersion",
                      self.hardware.firmware.video_bios_version)
        reg.create_key("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run")
        reg.create_key("HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\CurrentVersion\\Run")
        self._sync_peb_all()
        return self

    def _sync_peb_all(self) -> None:
        """Propagate hardware/OS identity into every live PEB.

        Writes only on actual change: PEB fields are either immutable
        after process creation or derived from machine state this method
        re-syncs after every restore — the invariant that keeps PEBs out
        of the process table's dirty-pid journal. A future mutable PEB
        field must either be covered here or notify the journal itself.
        """
        cores = self.hardware.cpu.cores
        major = self.os_version.major
        minor = self.os_version.minor
        for process in self.processes.all():
            peb = process.peb
            if peb.number_of_processors != cores:
                peb.number_of_processors = cores
            if peb.os_major_version != major:
                peb.os_major_version = major
            if peb.os_minor_version != minor:
                peb.os_minor_version = minor

    # -- conveniences the API layer uses -------------------------------------

    def memory_status(self) -> MemoryStatusEx:
        return MemoryStatusEx(total_phys=self.hardware.total_ram,
                              avail_phys=self.hardware.available_ram)

    def system_info(self) -> SystemInfo:
        return SystemInfo(number_of_processors=self.hardware.cpu.cores)

    def user_profile_dir(self) -> str:
        return f"C:\\Users\\{self.identity.username}"

    def spawn_process(self, name: str, image_path: Optional[str] = None,
                      parent: Optional[Process] = None,
                      command_line: str = "",
                      protected: bool = False,
                      suspended: bool = False) -> Process:
        """Spawn a process with its PEB synced to this machine's hardware."""
        process = self.processes.spawn(name, image_path, parent, command_line,
                                       protected, suspended)
        process.peb.number_of_processors = self.hardware.cpu.cores
        process.peb.os_major_version = self.os_version.major
        process.peb.os_minor_version = self.os_version.minor
        return process

    def reset_processes(self) -> None:
        """Discard the process table and reboot the baseline process tree.

        Used by the Deep Freeze substitute: a reset machine comes back with
        the standard boot-time processes only.
        """
        self.processes = ProcessTable()
        self.processes.on_create(self._publish_process_create)
        self.processes.on_terminate(self._publish_process_terminate)
        self.handles = HandleTable()
        self.explorer = populate_baseline(self.processes)
        self._sync_peb_all()

    # -- snapshot / restore (Deep Freeze substitute) ---------------------------

    def subsystem_versions(self) -> dict:
        """Generation counters of every tracked subsystem.

        Comparing two readings tells which subsystems mutated in between —
        the dirty set :class:`repro.parallel.template.MachineTemplate`
        rewinds selectively. Untracked subsystems (clock, hardware,
        processes, handles, identity) are cheap enough to restore always.
        """
        return {name: getattr(self, name).mutations
                for name in TRACKED_SUBSYSTEMS}

    def snapshot(self) -> dict:
        return {
            "identity": dataclasses.replace(self.identity),
            "os_version": dataclasses.replace(self.os_version),
            "clock": self.clock.snapshot(),
            "registry": self.registry.snapshot(),
            "filesystem": self.filesystem.snapshot(),
            "gui": self.gui.snapshot(),
            "devices": self.devices.snapshot(),
            "mutexes": self.mutexes.snapshot(),
            "services": self.services.snapshot(),
            "eventlog": self.eventlog.snapshot(),
            "dnscache": self.dnscache.snapshot(),
            "network": self.network.snapshot(),
            "hardware": self.hardware.snapshot(),
        }

    def snapshot_state(self) -> dict:
        """Full-state snapshot: :meth:`snapshot` plus processes and handles.

        Unlike :meth:`snapshot` (the Deep Freeze substitute, where the
        process tree is recreated by a reboot), this captures *everything*
        needed to rewind the machine in place — the contract behind
        :class:`repro.parallel.template.MachineTemplate`.
        """
        state = self.snapshot()
        state["processes"] = self.processes.snapshot()
        state["handles"] = self.handles.snapshot()
        state["explorer_pid"] = (self.explorer.pid
                                 if self.explorer is not None else None)
        return state

    def restore_state(self, state: dict,
                      subsystems: Optional[set] = None) -> None:
        """Rewind the machine, in place, to a :meth:`snapshot_state`.

        ``subsystems=None`` restores everything. Passing a set of
        :data:`TRACKED_SUBSYSTEMS` names restores only those (plus the
        always-restored cheap state: identity, OS version, clock,
        hardware, processes, handles) — the dirty-set delta-restore
        contract, which requires every *unlisted* tracked subsystem to be
        provably unchanged since the snapshot.

        Also drops every event-bus subscriber: tracers/controllers from a
        previous run cannot be part of the snapshot, and a crashed run may
        have leaked its subscription (``Tracer`` unsubscribes via context
        manager, but the controller shutdown after it can be skipped by an
        exception).
        """
        self.bus.clear_subscribers()
        self.processes.restore(state["processes"])
        self.handles.restore(state["handles"])
        explorer_pid = state.get("explorer_pid")
        self.explorer = (self.processes.get(explorer_pid)
                         if explorer_pid is not None else None)
        self.restore(state, subsystems=subsystems)

    def restore(self, state: dict,
                subsystems: Optional[set] = None) -> None:
        """Restore everything except the process table.

        Processes are rebuilt by re-running :meth:`boot` semantics in
        :class:`repro.analysis.deepfreeze.DeepFreeze`, matching the paper's
        reboot-and-reset cycle where the process tree is recreated by the OS.

        ``subsystems`` limits which tracked subsystems are rewound (see
        :meth:`restore_state`); cheap untracked state is always restored.
        """
        self.identity = dataclasses.replace(state["identity"])
        self.os_version = dataclasses.replace(state["os_version"])
        self.clock.restore(state["clock"])
        if subsystems is None or "registry" in subsystems:
            self.registry.restore(state["registry"])
        if subsystems is None or "filesystem" in subsystems:
            self.filesystem.restore(state["filesystem"])
        if subsystems is None or "gui" in subsystems:
            self.gui.restore(state["gui"])
        if subsystems is None or "devices" in subsystems:
            self.devices.restore(state["devices"])
        if subsystems is None or "mutexes" in subsystems:
            self.mutexes.restore(state.get("mutexes", {}))
        if subsystems is None or "services" in subsystems:
            self.services.restore(state["services"])
        if subsystems is None or "eventlog" in subsystems:
            self.eventlog.restore(state["eventlog"])
        if subsystems is None or "dnscache" in subsystems:
            self.dnscache.restore(state["dnscache"])
        if subsystems is None or "network" in subsystems:
            self.network.restore(state["network"])
        self.hardware.restore(state["hardware"])
        self._sync_peb_all()
