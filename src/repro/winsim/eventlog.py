"""Windows event log of the simulated machine.

Two wear-and-tear artifacts read this log through ``EvtQuery``/``EvtNext``:
``sysevt`` (total number of system events) and ``syssrc`` (number of
distinct sources among recent events). An actively-used machine accumulates
tens of thousands of events from many sources; a freshly-imaged sandbox has
only the few hundred that installation produced. Scarecrow's wear-and-tear
extension truncates what ``EvtNext`` yields to sandbox-typical statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Set


@dataclasses.dataclass(frozen=True)
class EventRecord:
    """One log record (the fields the artifacts consume)."""

    record_id: int
    source: str
    event_id: int
    timestamp_ms: int
    level: str = "Information"


class EventLog:
    """An append-only channel (we model the ``System`` channel)."""

    def __init__(self, channel: str = "System") -> None:
        self.channel = channel
        self._records: List[EventRecord] = []
        #: Mutation generation: advances on every append (and on
        #: restore), the dirty-set signal delta-restore compares.
        self.mutations = 0

    def append(self, source: str, event_id: int, timestamp_ms: int = 0,
               level: str = "Information") -> EventRecord:
        record = EventRecord(len(self._records) + 1, source, event_id,
                             timestamp_ms, level)
        self._records.append(record)
        self.mutations += 1
        return record

    def extend_synthetic(self, count: int, sources: Iterable[str],
                         start_ms: int = 0, step_ms: int = 60_000) -> None:
        """Bulk-generate ``count`` events cycling over ``sources``.

        Environment builders use this to "age" a machine: an end-user host
        gets ~hundreds of thousands of events over many sources, a sandbox
        image only its provisioning burst.
        """
        source_list = list(sources)
        if not source_list:
            raise ValueError("need at least one event source")
        for index in range(count):
            self.append(source_list[index % len(source_list)],
                        event_id=1000 + index % 97,
                        timestamp_ms=start_ms + index * step_ms)

    # -- queries -----------------------------------------------------------

    def records(self) -> List[EventRecord]:
        return list(self._records)

    def recent(self, limit: int) -> List[EventRecord]:
        """Most recent ``limit`` records, newest last."""
        return self._records[-limit:] if limit > 0 else []

    def count(self) -> int:
        return len(self._records)

    def distinct_sources(self, limit: int = 0) -> Set[str]:
        records = self.recent(limit) if limit else self._records
        return {r.source for r in records}

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict:
        return {"channel": self.channel, "records": list(self._records)}

    def restore(self, state: dict) -> None:
        self.channel = state["channel"]
        self._records = list(state["records"])
        self.mutations += 1
