"""Process and thread table of the simulated machine.

Processes matter to the reproduction in four ways:

* Process *names* are fingerprint surface: ``VBoxTray.exe``,
  ``VBoxService.exe``, debugger/forensic-tool processes.
* The *parent* of the target process is fingerprint surface: malware run by
  a sandbox daemon has that daemon as parent instead of ``explorer.exe``;
  Scarecrow's controller deliberately mimics this (Section III-B).
* The PEB hangs off each process and can be read directly from memory,
  bypassing API hooks (the paper's one deactivation failure).
* Payload and evasion behaviour (self-spawn loops, process injection,
  terminating forensic tools) is process-table mutation.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import pickle
from typing import Callable, Dict, Iterable, List, Optional

from .modules import ModuleList, populate_default_modules
from .types import Peb


class ProcessState(enum.Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"
    TERMINATED = "terminated"


#: Dirty-pid journal capacity, as in the registry and filesystem: beyond
#: a few dozen per-process splices a full table rebuild is competitive.
_JOURNAL_CAP = 64


class TagDict(dict):
    """Per-process annotation dict that reports writes to the owning
    table's dirty-pid journal.

    ``process.tags[...] = ...`` is written by code all over the tree
    (controller, sandbox agents, payloads, hook injection), so the tags
    surface must notify the journal itself — a plain dict would let those
    writes slip past the delta-restore dirty set.
    """

    def __init__(self, owner: Optional["Process"] = None) -> None:
        super().__init__()
        self._owner = owner

    def _bump(self) -> None:
        owner = getattr(self, "_owner", None)
        if owner is not None:
            owner._bump()

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._bump()

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._bump()

    def pop(self, *args):
        result = super().pop(*args)
        self._bump()
        return result

    def popitem(self):
        result = super().popitem()
        self._bump()
        return result

    def clear(self) -> None:
        super().clear()
        self._bump()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._bump()

    def setdefault(self, key, default=None):
        result = super().setdefault(key, default)
        self._bump()
        return result


@dataclasses.dataclass
class Thread:
    tid: int
    suspended: bool = False


class Process:
    """One process: identity, lineage, PEB, modules, threads."""

    def __init__(self, pid: int, name: str, image_path: str,
                 parent: Optional["Process"], command_line: str = "",
                 protected: bool = False) -> None:
        self.pid = pid
        self.name = name
        self.image_path = image_path
        self.parent = parent
        self.parent_pid = parent.pid if parent is not None else 0
        self.command_line = command_line or image_path
        self.state = ProcessState.RUNNING
        self.exit_code: Optional[int] = None
        #: Protected processes resist termination by untrusted callers —
        #: Scarecrow protects its 24 deceptive analysis-tool processes.
        self.protected = protected
        #: Owning table, set by :meth:`ProcessTable.spawn` and re-linked
        #: by :meth:`ProcessTable.restore`; mutations report to its
        #: dirty-pid journal through :meth:`_bump`.
        self._table: Optional["ProcessTable"] = None
        self.peb = Peb(process_parameters_command_line=self.command_line)
        self.modules = ModuleList(name, image_path, owner=self)
        populate_default_modules(self.modules)
        self.threads: List[Thread] = [Thread(tid=pid + 1)]
        self._tid_counter = itertools.count(pid + 2)
        #: Arbitrary per-process annotations (e.g. which sample spawned it,
        #: whether scarecrow.dll is injected). Kept open-ended on purpose;
        #: a :class:`TagDict` so writes reach the dirty-pid journal.
        self.tags: Dict[str, object] = TagDict(self)

    def _bump(self) -> None:
        """Report a mutation of this process to the owning table's journal."""
        table = self._table
        if table is not None:
            table._journal(self.pid)

    def __getstate__(self) -> dict:
        """Pickle without the table back-reference or the parent link.

        The table would drag its listeners (bound machine methods) into
        the blob; the parent would duplicate the whole ancestor chain in
        every per-process snapshot blob. Both are re-linked from
        ``parent_pid`` by :meth:`ProcessTable.restore` — a ``Process``
        pickled *outside* its table keeps ``parent_pid`` but loses the
        live ``parent`` object.
        """
        state = dict(self.__dict__)
        state["parent"] = None
        state["_table"] = None
        return state

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.TERMINATED

    def terminate(self, exit_code: int = 0) -> None:
        self.state = ProcessState.TERMINATED
        self.exit_code = exit_code
        self._bump()

    def suspend(self) -> None:
        if self.alive:
            self.state = ProcessState.SUSPENDED
            for thread in self.threads:
                thread.suspended = True
            self._bump()

    def resume(self) -> None:
        if self.alive:
            self.state = ProcessState.RUNNING
            for thread in self.threads:
                thread.suspended = False
            self._bump()

    def spawn_thread(self) -> Thread:
        thread = Thread(tid=next(self._tid_counter))
        self.threads.append(thread)
        self._bump()
        return thread

    # -- lineage -------------------------------------------------------------

    def ancestors(self) -> Iterable["Process"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process pid={self.pid} {self.name!r} {self.state.value}>"


class ProcessTable:
    """All processes of one machine."""

    #: Outside snapshot/restore by design (scarelint SC008): listeners
    #: are live callbacks into the owning Machine/tracers — restore
    #: must keep the *current* wiring, and Machine.restore_state drops
    #: stale bus subscribers itself.
    _SNAPSHOT_EXEMPT = ("_create_listeners", "_terminate_listeners")

    def __init__(self) -> None:
        self._by_pid: Dict[int, Process] = {}
        self._pid_counter = itertools.count(4, 4)
        self._create_listeners: List[Callable[[Process], None]] = []
        self._terminate_listeners: List[Callable[[Process], None]] = []
        #: Mutation generation: advances on every table or process change
        #: (and on restore), mirroring the tracked winsim subsystems.
        self.mutations = 0
        #: Dirty pids since the last :meth:`restore` — or ``None`` when
        #: the journal cannot vouch for the divergence (never restored, or
        #: overflowed past the cap).
        self._dirty_pids: Optional[set] = None
        #: Identity of the snapshot dict the last restore rewound to; the
        #: journal only holds relative to that exact dict.
        self._last_restored_state: Optional[dict] = None

    def _journal(self, pid: int) -> None:
        self.mutations += 1
        journal = self._dirty_pids
        if journal is None:
            return
        journal.add(pid)
        if len(journal) > _JOURNAL_CAP:
            self._dirty_pids = None

    # -- events (tracer taps) -------------------------------------------------

    def on_create(self, callback: Callable[[Process], None]) -> None:
        self._create_listeners.append(callback)

    def on_terminate(self, callback: Callable[[Process], None]) -> None:
        self._terminate_listeners.append(callback)

    # -- creation / termination -----------------------------------------------

    def spawn(self, name: str, image_path: Optional[str] = None,
              parent: Optional[Process] = None, command_line: str = "",
              protected: bool = False, suspended: bool = False) -> Process:
        pid = next(self._pid_counter)
        process = Process(pid, name,
                          image_path or f"C:\\Windows\\System32\\{name}",
                          parent, command_line, protected)
        if suspended:
            process.suspend()
        self._by_pid[pid] = process
        process._table = self
        self._journal(pid)
        for callback in self._create_listeners:
            callback(process)
        return process

    def terminate(self, pid: int, exit_code: int = 0,
                  by_untrusted: bool = False) -> bool:
        """Terminate ``pid``. Protected processes shrug off untrusted kills.

        Returns ``True`` when the process actually terminated. The paper:
        "we include 24 processes ... and protect them from being terminated
        by untrusted software" — ``by_untrusted=True`` models a kill
        attempted by a (potentially malicious) target program.
        """
        process = self._by_pid.get(pid)
        if process is None or not process.alive:
            return False
        if by_untrusted and process.protected:
            return False
        process.terminate(exit_code)
        for callback in self._terminate_listeners:
            callback(process)
        return True

    # -- queries ---------------------------------------------------------------

    def get(self, pid: int) -> Optional[Process]:
        return self._by_pid.get(pid)

    def find_by_name(self, name: str) -> List[Process]:
        wanted = name.lower()
        return [p for p in self._by_pid.values()
                if p.alive and p.name.lower() == wanted]

    def name_exists(self, name: str) -> bool:
        return bool(self.find_by_name(name))

    def running(self) -> List[Process]:
        return [p for p in self._by_pid.values() if p.alive]

    def running_names(self) -> List[str]:
        return [p.name for p in self.running()]

    def all(self) -> List[Process]:
        return list(self._by_pid.values())

    def descendants(self, root: Process) -> List[Process]:
        """Every process with ``root`` in its ancestor chain."""
        result = []
        for process in self._by_pid.values():
            if any(anc is root for anc in process.ancestors()):
                result.append(process)
        return result

    def __len__(self) -> int:
        return len(self._by_pid)

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> dict:
        """Deep snapshot of every process, one pickle blob per pid.

        Listeners are deliberately excluded: they hold bound methods of the
        owning :class:`~repro.winsim.machine.Machine` and survive
        :meth:`restore` untouched, so a restored table keeps publishing to
        the same event bus. Per-pid blobs (parent links stripped, see
        :meth:`Process.__getstate__`) are what make the dirty-pid splice
        in :meth:`restore` possible: one touched process costs one small
        ``pickle.loads`` instead of a whole-table rebuild.
        """
        return {
            "blobs": {pid: pickle.dumps(process,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                      for pid, process in self._by_pid.items()},
            "counter": pickle.dumps(self._pid_counter,
                                    protocol=pickle.HIGHEST_PROTOCOL),
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`; safe to call repeatedly.

        With an intact dirty-pid journal and the identical snapshot dict
        as the previous restore, only the touched pids are spliced back:
        snapshot pids reload from their blob, pids absent from the
        snapshot (spawned since) are dropped. Otherwise every process is
        rebuilt. Template pids can never be re-spawned (the pid counter
        is monotonic) and nothing removes a pid outside this method, so
        in-place replacement already preserves the snapshot's insertion
        order. Either way parent links and table back-references are then
        re-attached from ``parent_pid``, restoring ancestor-chain
        *identity* (``descendants`` compares with ``is``) even for clean
        processes whose parent was reloaded.
        """
        blobs = state["blobs"]
        journal = self._dirty_pids
        if journal is not None and state is self._last_restored_state:
            for pid in journal:
                blob = blobs.get(pid)
                if blob is None:
                    self._by_pid.pop(pid, None)
                else:
                    self._by_pid[pid] = pickle.loads(blob)
        else:
            self._by_pid = {pid: pickle.loads(blob)
                            for pid, blob in blobs.items()}
        self._pid_counter = pickle.loads(state["counter"])
        by_pid = self._by_pid
        for process in by_pid.values():
            process._table = self
            parent = by_pid.get(process.parent_pid)
            if process.parent is not parent:
                process.parent = parent
        self.mutations += 1
        self._last_restored_state = state
        self._dirty_pids = set()


#: Baseline processes present on any Windows 7 machine.
BASELINE_PROCESSES = (
    ("System", "C:\\Windows\\System32\\ntoskrnl.exe"),
    ("smss.exe", "C:\\Windows\\System32\\smss.exe"),
    ("csrss.exe", "C:\\Windows\\System32\\csrss.exe"),
    ("wininit.exe", "C:\\Windows\\System32\\wininit.exe"),
    ("services.exe", "C:\\Windows\\System32\\services.exe"),
    ("lsass.exe", "C:\\Windows\\System32\\lsass.exe"),
    ("svchost.exe", "C:\\Windows\\System32\\svchost.exe"),
    ("winlogon.exe", "C:\\Windows\\System32\\winlogon.exe"),
    ("explorer.exe", "C:\\Windows\\explorer.exe"),
    ("taskhost.exe", "C:\\Windows\\System32\\taskhost.exe"),
    ("dwm.exe", "C:\\Windows\\System32\\dwm.exe"),
)


def populate_baseline(table: ProcessTable) -> Process:
    """Create the standard boot-time process tree; returns ``explorer.exe``."""
    system = table.spawn("System", "C:\\Windows\\System32\\ntoskrnl.exe")
    explorer: Optional[Process] = None
    for name, path in BASELINE_PROCESSES[1:]:
        process = table.spawn(name, path, parent=system)
        if name == "explorer.exe":
            explorer = process
    assert explorer is not None
    return explorer
