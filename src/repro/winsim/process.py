"""Process and thread table of the simulated machine.

Processes matter to the reproduction in four ways:

* Process *names* are fingerprint surface: ``VBoxTray.exe``,
  ``VBoxService.exe``, debugger/forensic-tool processes.
* The *parent* of the target process is fingerprint surface: malware run by
  a sandbox daemon has that daemon as parent instead of ``explorer.exe``;
  Scarecrow's controller deliberately mimics this (Section III-B).
* The PEB hangs off each process and can be read directly from memory,
  bypassing API hooks (the paper's one deactivation failure).
* Payload and evasion behaviour (self-spawn loops, process injection,
  terminating forensic tools) is process-table mutation.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import pickle
from typing import Callable, Dict, Iterable, List, Optional

from .modules import ModuleList, populate_default_modules
from .types import Peb


class ProcessState(enum.Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"
    TERMINATED = "terminated"


@dataclasses.dataclass
class Thread:
    tid: int
    suspended: bool = False


class Process:
    """One process: identity, lineage, PEB, modules, threads."""

    def __init__(self, pid: int, name: str, image_path: str,
                 parent: Optional["Process"], command_line: str = "",
                 protected: bool = False) -> None:
        self.pid = pid
        self.name = name
        self.image_path = image_path
        self.parent = parent
        self.parent_pid = parent.pid if parent is not None else 0
        self.command_line = command_line or image_path
        self.state = ProcessState.RUNNING
        self.exit_code: Optional[int] = None
        #: Protected processes resist termination by untrusted callers —
        #: Scarecrow protects its 24 deceptive analysis-tool processes.
        self.protected = protected
        self.peb = Peb(process_parameters_command_line=self.command_line)
        self.modules = ModuleList(name, image_path)
        populate_default_modules(self.modules)
        self.threads: List[Thread] = [Thread(tid=pid + 1)]
        self._tid_counter = itertools.count(pid + 2)
        #: Arbitrary per-process annotations (e.g. which sample spawned it,
        #: whether scarecrow.dll is injected). Kept open-ended on purpose.
        self.tags: Dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.TERMINATED

    def terminate(self, exit_code: int = 0) -> None:
        self.state = ProcessState.TERMINATED
        self.exit_code = exit_code

    def suspend(self) -> None:
        if self.alive:
            self.state = ProcessState.SUSPENDED
            for thread in self.threads:
                thread.suspended = True

    def resume(self) -> None:
        if self.alive:
            self.state = ProcessState.RUNNING
            for thread in self.threads:
                thread.suspended = False

    def spawn_thread(self) -> Thread:
        thread = Thread(tid=next(self._tid_counter))
        self.threads.append(thread)
        return thread

    # -- lineage -------------------------------------------------------------

    def ancestors(self) -> Iterable["Process"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process pid={self.pid} {self.name!r} {self.state.value}>"


class ProcessTable:
    """All processes of one machine."""

    def __init__(self) -> None:
        self._by_pid: Dict[int, Process] = {}
        self._pid_counter = itertools.count(4, 4)
        self._create_listeners: List[Callable[[Process], None]] = []
        self._terminate_listeners: List[Callable[[Process], None]] = []

    # -- events (tracer taps) -------------------------------------------------

    def on_create(self, callback: Callable[[Process], None]) -> None:
        self._create_listeners.append(callback)

    def on_terminate(self, callback: Callable[[Process], None]) -> None:
        self._terminate_listeners.append(callback)

    # -- creation / termination -----------------------------------------------

    def spawn(self, name: str, image_path: Optional[str] = None,
              parent: Optional[Process] = None, command_line: str = "",
              protected: bool = False, suspended: bool = False) -> Process:
        pid = next(self._pid_counter)
        process = Process(pid, name,
                          image_path or f"C:\\Windows\\System32\\{name}",
                          parent, command_line, protected)
        if suspended:
            process.suspend()
        self._by_pid[pid] = process
        for callback in self._create_listeners:
            callback(process)
        return process

    def terminate(self, pid: int, exit_code: int = 0,
                  by_untrusted: bool = False) -> bool:
        """Terminate ``pid``. Protected processes shrug off untrusted kills.

        Returns ``True`` when the process actually terminated. The paper:
        "we include 24 processes ... and protect them from being terminated
        by untrusted software" — ``by_untrusted=True`` models a kill
        attempted by a (potentially malicious) target program.
        """
        process = self._by_pid.get(pid)
        if process is None or not process.alive:
            return False
        if by_untrusted and process.protected:
            return False
        process.terminate(exit_code)
        for callback in self._terminate_listeners:
            callback(process)
        return True

    # -- queries ---------------------------------------------------------------

    def get(self, pid: int) -> Optional[Process]:
        return self._by_pid.get(pid)

    def find_by_name(self, name: str) -> List[Process]:
        wanted = name.lower()
        return [p for p in self._by_pid.values()
                if p.alive and p.name.lower() == wanted]

    def name_exists(self, name: str) -> bool:
        return bool(self.find_by_name(name))

    def running(self) -> List[Process]:
        return [p for p in self._by_pid.values() if p.alive]

    def running_names(self) -> List[str]:
        return [p.name for p in self.running()]

    def all(self) -> List[Process]:
        return list(self._by_pid.values())

    def descendants(self, root: Process) -> List[Process]:
        """Every process with ``root`` in its ancestor chain."""
        result = []
        for process in self._by_pid.values():
            if any(anc is root for anc in process.ancestors()):
                result.append(process)
        return result

    def __len__(self) -> int:
        return len(self._by_pid)

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> bytes:
        """Deep snapshot of every process (lineage, PEBs, counters) as a blob.

        Listeners are deliberately excluded: they hold bound methods of the
        owning :class:`~repro.winsim.machine.Machine` and survive
        :meth:`restore` untouched, so a restored table keeps publishing to
        the same event bus.
        """
        return pickle.dumps((self._by_pid, self._pid_counter),
                            protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, blob: bytes) -> None:
        """Reinstate a :meth:`snapshot`; safe to call repeatedly.

        Each call deserialises fresh :class:`Process` objects, so mutations
        made after one restore can never leak into the next.
        """
        self._by_pid, self._pid_counter = pickle.loads(blob)


#: Baseline processes present on any Windows 7 machine.
BASELINE_PROCESSES = (
    ("System", "C:\\Windows\\System32\\ntoskrnl.exe"),
    ("smss.exe", "C:\\Windows\\System32\\smss.exe"),
    ("csrss.exe", "C:\\Windows\\System32\\csrss.exe"),
    ("wininit.exe", "C:\\Windows\\System32\\wininit.exe"),
    ("services.exe", "C:\\Windows\\System32\\services.exe"),
    ("lsass.exe", "C:\\Windows\\System32\\lsass.exe"),
    ("svchost.exe", "C:\\Windows\\System32\\svchost.exe"),
    ("winlogon.exe", "C:\\Windows\\System32\\winlogon.exe"),
    ("explorer.exe", "C:\\Windows\\explorer.exe"),
    ("taskhost.exe", "C:\\Windows\\System32\\taskhost.exe"),
    ("dwm.exe", "C:\\Windows\\System32\\dwm.exe"),
)


def populate_baseline(table: ProcessTable) -> Process:
    """Create the standard boot-time process tree; returns ``explorer.exe``."""
    system = table.spawn("System", "C:\\Windows\\System32\\ntoskrnl.exe")
    explorer: Optional[Process] = None
    for name, path in BASELINE_PROCESSES[1:]:
        process = table.spawn(name, path, parent=system)
        if name == "explorer.exe":
            explorer = process
    assert explorer is not None
    return explorer
