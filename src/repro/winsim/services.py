"""Service Control Manager of the simulated machine.

VM guest tools install services (``VBoxService``, ``VMTools``, ``vmware``)
that both Pafish and malware enumerate. Services are also mirrored into
``SYSTEM\\CurrentControlSet\\Services`` by the environment builders so
registry-based probes see consistent state.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional


class ServiceState(enum.Enum):
    STOPPED = "stopped"
    RUNNING = "running"


@dataclasses.dataclass
class Service:
    name: str
    display_name: str
    image_path: str
    state: ServiceState = ServiceState.RUNNING


class ServiceManager:
    """All installed services of one machine."""

    def __init__(self) -> None:
        self._services: Dict[str, Service] = {}
        #: Mutation generation: advances on every install/state change
        #: (and on restore), the dirty-set signal delta-restore compares.
        self.mutations = 0

    def install(self, name: str, display_name: Optional[str] = None,
                image_path: str = "",
                state: ServiceState = ServiceState.RUNNING) -> Service:
        service = Service(name, display_name or name,
                          image_path or f"C:\\Windows\\System32\\{name}.exe",
                          state)
        self._services[name.lower()] = service
        self.mutations += 1
        return service

    def uninstall(self, name: str) -> bool:
        removed = self._services.pop(name.lower(), None) is not None
        if removed:
            self.mutations += 1
        return removed

    def get(self, name: str) -> Optional[Service]:
        return self._services.get(name.lower())

    def exists(self, name: str) -> bool:
        return name.lower() in self._services

    def start(self, name: str) -> bool:
        """Transition a service to RUNNING; False if it is not installed."""
        service = self.get(name)
        if service is None:
            return False
        service.state = ServiceState.RUNNING
        self.mutations += 1
        return True

    def stop(self, name: str) -> bool:
        """Transition a service to STOPPED; False if it is not installed."""
        service = self.get(name)
        if service is None:
            return False
        service.state = ServiceState.STOPPED
        self.mutations += 1
        return True

    def is_running(self, name: str) -> bool:
        service = self.get(name)
        return service is not None and service.state is ServiceState.RUNNING

    def running(self) -> List[Service]:
        return [s for s in self._services.values()
                if s.state is ServiceState.RUNNING]

    def all(self) -> List[Service]:
        return list(self._services.values())

    def snapshot(self) -> dict:
        return {k: dataclasses.replace(v) for k, v in self._services.items()}

    def restore(self, state: dict) -> None:
        self._services = {k: dataclasses.replace(v) for k, v in state.items()}
        self.mutations += 1
