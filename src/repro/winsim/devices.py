r"""Device namespace (``\\.\...``) of the simulated machine.

Pafish and real malware probe VM guest devices by opening names like
``\\.\VBoxGuest``, ``\\.\VBoxMiniRdrDN``, ``\\.\vmci`` and ``\\.\HGFS``.
A successful ``CreateFile`` on one of these is hard evidence of a VM guest.
"""

from __future__ import annotations

from typing import Dict, List


def normalize_device_name(name: str) -> str:
    r"""Normalize ``\\.\VBoxGuest`` / ``\\\\.\\VBoxGuest`` to ``vboxguest``."""
    stripped = name.replace("/", "\\")
    while stripped.startswith("\\"):
        stripped = stripped[1:]
    if stripped.startswith(".\\"):
        stripped = stripped[2:]
    return stripped.lower()


class DeviceNamespace:
    """Openable device objects, by normalized name."""

    def __init__(self) -> None:
        self._devices: Dict[str, str] = {}  # normalized -> display name
        #: Mutation generation: advances on every namespace change (and
        #: on restore), the dirty-set signal delta-restore compares.
        self.mutations = 0

    def register(self, name: str) -> None:
        self._devices[normalize_device_name(name)] = name
        self.mutations += 1

    def unregister(self, name: str) -> bool:
        removed = self._devices.pop(normalize_device_name(name),
                                    None) is not None
        if removed:
            self.mutations += 1
        return removed

    def exists(self, name: str) -> bool:
        return normalize_device_name(name) in self._devices

    def names(self) -> List[str]:
        return list(self._devices.values())

    def snapshot(self) -> dict:
        return dict(self._devices)

    def restore(self, state: dict) -> None:
        self._devices = dict(state)
        self.mutations += 1


#: Devices exposed by VirtualBox Guest Additions.
VBOX_DEVICES = ("\\\\.\\VBoxMiniRdrDN", "\\\\.\\VBoxGuest",
                "\\\\.\\VBoxTrayIPC", "\\\\.\\pipe\\VBoxMiniRdDN",
                "\\\\.\\pipe\\VBoxTrayIPC")

#: Devices exposed by VMware Tools.
VMWARE_DEVICES = ("\\\\.\\HGFS", "\\\\.\\vmci")
