r"""Device namespace (``\\.\...``) of the simulated machine.

Pafish and real malware probe VM guest devices by opening names like
``\\.\VBoxGuest``, ``\\.\VBoxMiniRdrDN``, ``\\.\vmci`` and ``\\.\HGFS``.
A successful ``CreateFile`` on one of these is hard evidence of a VM guest.
"""

from __future__ import annotations

from typing import Dict, List


def normalize_device_name(name: str) -> str:
    r"""Normalize ``\\.\VBoxGuest`` / ``\\\\.\\VBoxGuest`` to ``vboxguest``."""
    stripped = name.replace("/", "\\")
    while stripped.startswith("\\"):
        stripped = stripped[1:]
    if stripped.startswith(".\\"):
        stripped = stripped[2:]
    return stripped.lower()


class DeviceNamespace:
    """Openable device objects, by normalized name."""

    def __init__(self) -> None:
        self._devices: Dict[str, str] = {}  # normalized -> display name

    def register(self, name: str) -> None:
        self._devices[normalize_device_name(name)] = name

    def unregister(self, name: str) -> bool:
        return self._devices.pop(normalize_device_name(name), None) is not None

    def exists(self, name: str) -> bool:
        return normalize_device_name(name) in self._devices

    def names(self) -> List[str]:
        return list(self._devices.values())

    def snapshot(self) -> dict:
        return dict(self._devices)

    def restore(self, state: dict) -> None:
        self._devices = dict(state)


#: Devices exposed by VirtualBox Guest Additions.
VBOX_DEVICES = ("\\\\.\\VBoxMiniRdrDN", "\\\\.\\VBoxGuest",
                "\\\\.\\VBoxTrayIPC", "\\\\.\\pipe\\VBoxMiniRdDN",
                "\\\\.\\pipe\\VBoxTrayIPC")

#: Devices exposed by VMware Tools.
VMWARE_DEVICES = ("\\\\.\\HGFS", "\\\\.\\vmci")
