"""Virtual time for the simulated machine.

All timing-sensitive behaviour in the reproduction — ``GetTickCount`` deltas,
``RDTSC`` pairs around ``CPUID``, ``Sleep`` acceleration detection — runs off
this deterministic clock rather than the host's. That keeps every experiment
reproducible and lets environment builders model the *relationships* the
paper relies on (e.g. a hypervisor's CPUID trap inflating RDTSC deltas by
orders of magnitude) without depending on real silicon.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

#: Nominal TSC frequency of the simulated CPU, ticks per second.
TSC_HZ = 2_400_000_000

#: Windows FILETIME epoch offset handling is not needed; we keep an abstract
#: nanosecond timeline starting at machine boot.
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


@dataclasses.dataclass
class TimingProfile:
    """Per-environment timing characteristics.

    ``cpuid_overhead_ns`` is the extra wall time a CPUID instruction costs.
    On bare metal this is ~100-200 cycles; under a trapping hypervisor the
    VM exit costs thousands of cycles, which is exactly what Pafish's
    ``rdtsc_diff_vmexit`` measures. ``rdtsc_jitter_ns`` adds deterministic
    pseudo-jitter so back-to-back RDTSC reads are never identical.
    """

    cpuid_overhead_ns: int = 60
    rdtsc_base_cost_ns: int = 10
    rdtsc_jitter_ns: int = 4
    sleep_acceleration: float = 1.0  # >1.0 means sandbox fast-forwards sleeps
    tick_resolution_ms: int = 16  # GetTickCount granularity
    #: Cost of dispatching one user-mode exception. Debuggers interpose on
    #: the dispatch path (first-chance handling), inflating this by orders
    #: of magnitude — the Section II-B(g) side channel.
    exception_dispatch_ns: int = 900
    debugged_exception_dispatch_ns: int = 220_000


class VirtualClock:
    """Deterministic monotonically-advancing clock.

    Time only moves when simulated work happens (API calls, sleeps,
    instruction execution), which is enough for every timing probe in the
    paper and keeps runs bit-for-bit reproducible.
    """

    def __init__(self, profile: Optional[TimingProfile] = None,
                 boot_tick_ms: int = 19_237_512) -> None:
        # Boot tick: real end-user machines have large uptimes; sandboxes
        # reboot constantly. Environment builders override this.
        self.profile = profile or TimingProfile()
        self._ns = boot_tick_ms * NS_PER_MS
        self._jitter_state = 0x9E3779B9

    # -- advancing ---------------------------------------------------------

    def advance_ns(self, ns: int) -> None:
        """Advance the timeline by ``ns`` nanoseconds of simulated work."""
        if ns < 0:
            raise ValueError("cannot advance the clock backwards")
        self._ns += ns

    def advance_ms(self, ms: float) -> None:
        self.advance_ns(int(ms * NS_PER_MS))

    def sleep(self, ms: float) -> float:
        """Simulate ``Sleep(ms)``; returns the wall ms actually elapsed.

        Sandboxes that fast-forward sleeps advance the *tick* clock by the
        full duration while burning less wall time; from inside the machine
        the only observable is the tick delta, so we advance by the full
        requested duration scaled down by acceleration errors is modelled
        in :mod:`repro.winapi.kernel32` where both clocks are compared.
        """
        elapsed = ms / self.profile.sleep_acceleration
        self.advance_ms(ms)
        return elapsed

    # -- reading -----------------------------------------------------------

    @property
    def now_ns(self) -> int:
        return self._ns

    def tick_count_ms(self) -> int:
        """``GetTickCount``: milliseconds since boot, at timer granularity."""
        ms = self._ns // NS_PER_MS
        res = self.profile.tick_resolution_ms
        return (ms // res) * res

    def rdtsc(self) -> int:
        """Read the simulated time-stamp counter (with pseudo-jitter)."""
        self._jitter_state = (self._jitter_state * 1103515245 + 12345) & 0xFFFFFFFF
        jitter = self._jitter_state % max(1, self.profile.rdtsc_jitter_ns)
        self.advance_ns(self.profile.rdtsc_base_cost_ns + jitter)
        return (self._ns * TSC_HZ) // NS_PER_S

    def cpuid_cost(self) -> None:
        """Charge the timeline for one CPUID execution."""
        self.advance_ns(self.profile.cpuid_overhead_ns)

    def snapshot(self) -> dict:
        return {"ns": self._ns, "jitter": self._jitter_state,
                "profile": dataclasses.replace(self.profile)}

    def restore(self, state: dict) -> None:
        self._ns = state["ns"]
        self._jitter_state = state["jitter"]
        self.profile = dataclasses.replace(state["profile"])
