"""Named kernel mutex namespace.

Two roles in the reproduction:

* **Infection markers.** Many families create a named mutex on first run
  and exit if it already exists (single-instance guard). The vaccination
  baseline (:mod:`repro.core.vaccine`, after Wichmann et al. / Xu et al.)
  pre-creates exactly these markers.
* **Sandbox-product mutexes** (e.g. Sandboxie's ``Sandboxie_SingleInstanceMutex_Control``)
  are another fingerprint surface evasive malware probes.
"""

from __future__ import annotations

from typing import Dict, List


class MutexNamespace:
    """Named mutexes of one machine (Global\\ and Local\\ collapse to one
    session namespace — the simulation models a single session)."""

    def __init__(self) -> None:
        self._mutexes: Dict[str, str] = {}  # normalized -> display name
        #: Mutation generation: advances on every namespace change (and
        #: on restore), the dirty-set signal delta-restore compares.
        self.mutations = 0

    @staticmethod
    def _normalize(name: str) -> str:
        stripped = name
        for prefix in ("Global\\", "Local\\"):
            if stripped.startswith(prefix):
                stripped = stripped[len(prefix):]
        return stripped.lower()

    def create(self, name: str) -> bool:
        """Create a mutex; returns ``False`` when it already existed
        (the ``ERROR_ALREADY_EXISTS`` signal single-instance guards use)."""
        key = self._normalize(name)
        existed = key in self._mutexes
        self._mutexes[key] = name
        self.mutations += 1
        return not existed

    def exists(self, name: str) -> bool:
        return self._normalize(name) in self._mutexes

    def release(self, name: str) -> bool:
        removed = self._mutexes.pop(self._normalize(name), None) is not None
        if removed:
            self.mutations += 1
        return removed

    def names(self) -> List[str]:
        return list(self._mutexes.values())

    def snapshot(self) -> dict:
        return dict(self._mutexes)

    def restore(self, state: dict) -> None:
        self._mutexes = dict(state)
        self.mutations += 1
