"""Simulated Windows substrate.

Every resource an evasive-malware fingerprint can observe — registry,
filesystem, processes (with PEB), loaded modules, GUI windows, device
namespace, services, event log, DNS cache, network stack, CPU/firmware,
virtual clock — modelled as one :class:`~repro.winsim.machine.Machine`.
"""

from .clock import TimingProfile, VirtualClock
from .devices import DeviceNamespace
from .dnscache import DnsCache, DnsCacheEntry
from .errors import NtStatus, Win32Error, nt_success
from .eventlog import EventLog, EventRecord
from .filesystem import FileSystem
from .gui import Window, WindowManager
from .hardware import Cpu, Firmware, Hardware
from .machine import TRACKED_SUBSYSTEMS, Machine, MachineIdentity
from .modules import Module, ModuleList
from .mutexes import MutexNamespace
from .network import Adapter, NetworkStack
from .process import Process, ProcessState, ProcessTable
from .registry import Registry, RegistryKey, RegistryValue, RegType
from .services import Service, ServiceManager, ServiceState
from .types import (GIB, KIB, MIB, Handle, HandleTable, MemoryStatusEx,
                    OsVersionInfo, Peb, SystemInfo)

__all__ = [
    "Adapter", "Cpu", "DeviceNamespace", "DnsCache", "DnsCacheEntry",
    "EventLog", "EventRecord", "FileSystem", "Firmware", "GIB", "Handle",
    "HandleTable", "Hardware", "KIB", "Machine", "MachineIdentity",
    "MemoryStatusEx", "MIB", "Module", "ModuleList", "MutexNamespace",
    "NetworkStack",
    "NtStatus", "OsVersionInfo", "Peb", "Process", "ProcessState",
    "ProcessTable", "Registry", "RegistryKey", "RegistryValue", "RegType",
    "Service", "ServiceManager", "ServiceState", "SystemInfo",
    "TimingProfile", "TRACKED_SUBSYSTEMS", "VirtualClock", "Win32Error",
    "Window", "WindowManager",
    "nt_success",
]
