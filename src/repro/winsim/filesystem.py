"""NTFS-like filesystem tree for the simulated machine.

Files and folders are the second major fingerprinting surface: VM driver
files (``vmmouse.sys``, ``vboxmouse.sys``), sandbox agent binaries, analysis
tool installs. Payload behaviour also lands here — ransomware encrypting
user documents is observable as writes plus renames to ``.WCRY`` extension.

Paths are case-insensitive, backslash-separated, rooted at drive letters
(``C:``). Each file carries attributes, timestamps and optional content.
"""

from __future__ import annotations

import dataclasses
import fnmatch
from typing import Dict, Iterator, List, Optional, Tuple

FILE_ATTRIBUTE_READONLY = 0x0001
FILE_ATTRIBUTE_HIDDEN = 0x0002
FILE_ATTRIBUTE_SYSTEM = 0x0004
FILE_ATTRIBUTE_DIRECTORY = 0x0010
FILE_ATTRIBUTE_ARCHIVE = 0x0020
FILE_ATTRIBUTE_NORMAL = 0x0080


def split_path(path: str) -> Tuple[str, List[str]]:
    """Split ``C:\\a\\b`` into drive ``"C:"`` and component list."""
    normalized = path.replace("/", "\\")
    parts = [p for p in normalized.split("\\") if p]
    if not parts or not parts[0].endswith(":"):
        raise ValueError(f"path must start with a drive letter: {path!r}")
    return parts[0].upper(), parts[1:]


@dataclasses.dataclass
class FileNode:
    """A file or directory node."""

    name: str
    is_dir: bool
    attributes: int = FILE_ATTRIBUTE_NORMAL
    content: bytes = b""
    creation_time_ms: int = 0
    last_write_time_ms: int = 0
    children: Dict[str, "FileNode"] = dataclasses.field(default_factory=dict)

    @property
    def size(self) -> int:
        return 0 if self.is_dir else len(self.content)

    def child(self, name: str) -> Optional["FileNode"]:
        return self.children.get(name.lower())


@dataclasses.dataclass
class Drive:
    """A mounted volume; ``total_bytes`` is the hardware-resource surface."""

    letter: str
    total_bytes: int
    used_bytes_base: int = 0  # space charged by the OS image itself
    root: FileNode = dataclasses.field(
        default_factory=lambda: FileNode("", is_dir=True,
                                         attributes=FILE_ATTRIBUTE_DIRECTORY))

    def content_bytes(self) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += node.size
            stack.extend(node.children.values())
        return total

    @property
    def free_bytes(self) -> int:
        return max(0, self.total_bytes - self.used_bytes_base - self.content_bytes())


#: Dirty-path journal capacity, as in the registry: beyond a few dozen
#: subtree splices a full tree rebuild is competitive anyway.
_JOURNAL_CAP = 64


def _load_node(blob: dict) -> FileNode:
    """Rebuild a node subtree from its snapshot blob, children in
    snapshot order (what keeps spliced and fully-rebuilt trees
    byte-identical)."""
    node = FileNode(blob["name"], blob["is_dir"], blob["attributes"],
                    blob["content"], blob["ctime"], blob["mtime"])
    for child_blob in blob["children"]:
        child = _load_node(child_blob)
        node.children[child.name.lower()] = child
    return node


class FileSystem:
    """All mounted drives of one machine."""

    def __init__(self) -> None:
        self._drives: Dict[str, Drive] = {}
        #: Mutation generation: advances on every tree change (and on
        #: restore), the dirty-set signal delta-restore compares.
        self.mutations = 0
        #: Dirty node paths since the last :meth:`restore` — tuples of
        #: ``(drive_letter, *lowered_parts)`` — or None when the journal
        #: cannot vouch for the divergence (never restored, overflowed,
        #: or a structural drive change).
        self._dirty_paths: Optional[set] = None
        #: Identity of the state dict the last restore rewound to (see
        #: the registry's field of the same name).
        self._last_restored_state: Optional[dict] = None

    def _journal(self, parts: tuple) -> None:
        journal = self._dirty_paths
        if journal is None:
            return
        if len(parts) < 2:
            self._dirty_paths = None
            return
        journal.add(parts)
        if len(journal) > _JOURNAL_CAP:
            self._dirty_paths = None

    # -- drives --------------------------------------------------------------

    def add_drive(self, letter: str, total_bytes: int,
                  used_bytes_base: int = 0) -> Drive:
        letter = letter.upper().rstrip(":") + ":"
        drive = Drive(letter, total_bytes, used_bytes_base)
        self._drives[letter] = drive
        self.mutations += 1
        self._dirty_paths = None  # structural: splicing cannot cover it
        return drive

    def drive(self, letter: str) -> Optional[Drive]:
        return self._drives.get(letter.upper().rstrip(":") + ":")

    def drives(self) -> List[Drive]:
        return list(self._drives.values())

    # -- node resolution -----------------------------------------------------

    def _resolve(self, path: str) -> Optional[FileNode]:
        try:
            drive_letter, parts = split_path(path)
        except ValueError:
            return None
        drive = self._drives.get(drive_letter)
        if drive is None:
            return None
        node = drive.root
        for part in parts:
            nxt = node.child(part)
            if nxt is None:
                return None
            node = nxt
        return node

    def exists(self, path: str) -> bool:
        return self._resolve(path) is not None

    def is_dir(self, path: str) -> bool:
        node = self._resolve(path)
        return node is not None and node.is_dir

    def stat(self, path: str) -> Optional[FileNode]:
        return self._resolve(path)

    # -- mutation --------------------------------------------------------------

    def makedirs(self, path: str, when_ms: int = 0) -> FileNode:
        drive_letter, parts = split_path(path)
        drive = self._drives.get(drive_letter)
        if drive is None:
            raise FileNotFoundError(f"no such drive: {drive_letter}")
        node = drive.root
        walked = [drive_letter]
        for part in parts:
            walked.append(part.lower())
            nxt = node.child(part)
            if nxt is None:
                nxt = FileNode(part, is_dir=True,
                               attributes=FILE_ATTRIBUTE_DIRECTORY,
                               creation_time_ms=when_ms,
                               last_write_time_ms=when_ms)
                node.children[part.lower()] = nxt
                self.mutations += 1
                self._journal(tuple(walked))
            node = nxt
        if not node.is_dir:
            raise NotADirectoryError(path)
        return node

    def write_file(self, path: str, content: bytes = b"",
                   attributes: int = FILE_ATTRIBUTE_NORMAL,
                   when_ms: int = 0) -> FileNode:
        drive_letter, parts = split_path(path)
        if not parts:
            raise IsADirectoryError(path)
        parent = self.makedirs(
            drive_letter + "\\" + "\\".join(parts[:-1]) if len(parts) > 1
            else drive_letter + "\\", when_ms=when_ms)
        name = parts[-1]
        existing = parent.child(name)
        if existing is not None and existing.is_dir:
            raise IsADirectoryError(path)
        node = FileNode(name, is_dir=False, attributes=attributes,
                        content=content,
                        creation_time_ms=(existing.creation_time_ms
                                          if existing else when_ms),
                        last_write_time_ms=when_ms)
        parent.children[name.lower()] = node
        self.mutations += 1
        self._journal((drive_letter, *(p.lower() for p in parts)))
        return node

    def read_file(self, path: str) -> Optional[bytes]:
        node = self._resolve(path)
        if node is None or node.is_dir:
            return None
        return node.content

    def delete(self, path: str) -> bool:
        try:
            drive_letter, parts = split_path(path)
        except ValueError:
            return False
        if not parts:
            return False
        drive = self._drives.get(drive_letter)
        if drive is None:
            return False
        node = drive.root
        for part in parts[:-1]:
            nxt = node.child(part)
            if nxt is None:
                return False
            node = nxt
        removed = node.children.pop(parts[-1].lower(), None) is not None
        if removed:
            self.mutations += 1
            self._journal((drive_letter, *(p.lower() for p in parts)))
        return removed

    def rename(self, src: str, dst: str, when_ms: int = 0) -> bool:
        node = self._resolve(src)
        if node is None:
            return False
        content = node.content
        attributes = node.attributes
        if node.is_dir:
            raise IsADirectoryError(src)
        if not self.delete(src):
            return False
        self.write_file(dst, content, attributes, when_ms=when_ms)
        return True

    # -- enumeration --------------------------------------------------------

    def listdir(self, path: str) -> List[str]:
        node = self._resolve(path)
        if node is None or not node.is_dir:
            return []
        return [child.name for child in node.children.values()]

    def walk(self, path: str) -> Iterator[Tuple[str, FileNode]]:
        """Yield ``(full_path, node)`` for every node under ``path``."""
        node = self._resolve(path)
        if node is None:
            return
        base = path.rstrip("\\")
        stack: List[Tuple[str, FileNode]] = [(base, node)]
        while stack:
            prefix, current = stack.pop()
            for child in current.children.values():
                full = f"{prefix}\\{child.name}"
                yield full, child
                if child.is_dir:
                    stack.append((full, child))

    def glob(self, directory: str, pattern: str) -> List[str]:
        """Shell-style matching of direct children, e.g. ``*.tmp.exe``."""
        return [name for name in self.listdir(directory)
                if fnmatch.fnmatch(name.lower(), pattern.lower())]

    def all_paths(self) -> List[str]:
        paths: List[str] = []
        for drive in self._drives.values():
            paths.extend(p for p, _ in self.walk(drive.letter + "\\"))
        return paths

    def file_count(self) -> int:
        return sum(1 for drive in self._drives.values()
                   for _, node in self.walk(drive.letter + "\\")
                   if not node.is_dir)

    # -- snapshot -----------------------------------------------------------

    def snapshot(self) -> dict:
        def dump(node: FileNode) -> dict:
            return {
                "name": node.name, "is_dir": node.is_dir,
                "attributes": node.attributes, "content": node.content,
                "ctime": node.creation_time_ms, "mtime": node.last_write_time_ms,
                "children": [dump(c) for c in node.children.values()],
            }

        return {letter: {"total": d.total_bytes, "base": d.used_bytes_base,
                         "root": dump(d.root)}
                for letter, d in self._drives.items()}

    def restore(self, state: dict) -> None:
        """Rewind all drives to ``state``.

        Mirrors the registry's path-granular restore: with an intact
        dirty-path journal and the identical state dict as last time,
        only the journaled subtrees are spliced back (same bytes, same
        child insertion order as a full rebuild); otherwise every drive
        tree is rebuilt from the snapshot.
        """
        journal = self._dirty_paths
        if journal is not None and state is self._last_restored_state:
            for parts in sorted(journal, key=len):
                self._sync_path(state, parts)
        else:
            self._drives.clear()
            for letter, drive_blob in state.items():
                drive = Drive(letter, drive_blob["total"],
                              drive_blob["base"],
                              _load_node(drive_blob["root"]))
                self._drives[letter] = drive
        self.mutations += 1
        self._last_restored_state = state
        self._dirty_paths = set()

    def _sync_path(self, state: dict, parts: tuple) -> None:
        """Make the live tree at ``parts`` match the snapshot exactly."""
        drive_blob = state.get(parts[0])
        drive = self._drives.get(parts[0])
        if drive_blob is None or drive is None:
            return
        blob: Optional[dict] = drive_blob["root"]
        parent_blob = blob
        for part in parts[1:]:
            parent_blob = blob
            blob = None
            for child in parent_blob["children"]:
                if child["name"].lower() == part:
                    blob = child
                    break
            if blob is None:
                break
        node = drive.root
        for part in parts[1:-1]:
            nxt = node.child(part)
            if nxt is None:
                return  # covered by a journaled ancestor
            node = nxt
        last = parts[-1]
        if blob is None:
            node.children.pop(last, None)
            return
        existed = last in node.children
        node.children[last] = _load_node(blob)
        if not existed:
            # Keep child insertion order identical to a full rebuild
            # (see the registry's reorder for the rationale).
            order = {c["name"].lower(): i
                     for i, c in enumerate(parent_blob["children"])}
            big = len(order)
            current = list(node.children)
            rank = {k: (order.get(k, big), i)
                    for i, k in enumerate(current)}
            node.children = {k: node.children[k]
                             for k in sorted(current, key=rank.get)}
