"""Network stack of the simulated machine.

Two behaviours matter for the reproduction:

* **DNS resolution.** Real end-user resolvers return NXDOMAIN for
  non-existent names; most sandboxes sinkhole *every* name to a controlled
  address to elicit C2 traffic. The WannaCry variant's kill switch — and
  Scarecrow's network deception — both live exactly here.
* **HTTP-ish reachability.** After resolving its kill-switch domain, the
  WannaCry variant checks whether an HTTP GET succeeds. We model a set of
  reachable IPs (the sandbox's fake web server / Scarecrow's proxy).

The stack also exposes adapter MAC addresses, an old-school VM fingerprint
(VirtualBox OUI ``08:00:27``, VMware OUIs ``00:05:69``/``00:0C:29``/...).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Set

#: Well-known virtualization OUIs.
VBOX_OUI = "08:00:27"
VMWARE_OUIS = ("00:05:69", "00:0C:29", "00:1C:14", "00:50:56")


@dataclasses.dataclass
class Adapter:
    name: str
    mac: str
    description: str = ""

    @property
    def oui(self) -> str:
        return ":".join(self.mac.upper().split(":")[:3])


def _stable_fake_ip(name: str) -> str:
    """Deterministic pseudo-IP for a registered (resolvable) domain."""
    digest = hashlib.sha256(name.lower().encode()).digest()
    return f"93.{digest[0]}.{digest[1]}.{max(1, digest[2])}"


class NetworkStack:
    """DNS + reachability + adapters for one machine."""

    def __init__(self) -> None:
        self._adapters: List[Adapter] = []
        self._zones: Dict[str, str] = {}          # real, registered names
        self._reachable_ips: Set[str] = set()     # IPs that answer HTTP
        self._nx_sinkhole_ip: Optional[str] = None
        self.query_log: List[str] = []
        #: Mutation generation: advances on every stack change — including
        #: each DNS query, which appends to the query log — and on restore.
        #: The dirty-set signal delta-restore compares.
        self.mutations = 0

    @property
    def nx_sinkhole_ip(self) -> Optional[str]:
        """When set, every otherwise-NX name resolves here (sandbox
        sinkhole, or Scarecrow's NX-domain deception)."""
        return self._nx_sinkhole_ip

    @nx_sinkhole_ip.setter
    def nx_sinkhole_ip(self, value: Optional[str]) -> None:
        if value != self._nx_sinkhole_ip:
            self.mutations += 1
        self._nx_sinkhole_ip = value

    # -- adapters ---------------------------------------------------------

    def add_adapter(self, name: str, mac: str, description: str = "") -> Adapter:
        adapter = Adapter(name, mac.upper(), description)
        self._adapters.append(adapter)
        self.mutations += 1
        return adapter

    def adapters(self) -> List[Adapter]:
        return list(self._adapters)

    def has_vm_mac(self) -> bool:
        vm_ouis = {VBOX_OUI, *VMWARE_OUIS}
        return any(a.oui in vm_ouis for a in self._adapters)

    # -- DNS ---------------------------------------------------------------

    def register_domain(self, name: str, ip: Optional[str] = None) -> str:
        """Make ``name`` genuinely resolvable (a registered internet name)."""
        ip = ip or _stable_fake_ip(name)
        self._zones[name.lower()] = ip
        self.mutations += 1
        return ip

    def domain_exists(self, name: str) -> bool:
        return name.lower() in self._zones

    def resolve(self, name: str) -> Optional[str]:
        """Resolve ``name``; ``None`` means NXDOMAIN.

        The sinkhole answers for names that do not exist — which is exactly
        the tell evasive malware (and the WannaCry kill switch) looks for.
        """
        self.query_log.append(name.lower())
        self.mutations += 1
        ip = self._zones.get(name.lower())
        if ip is not None:
            return ip
        return self._nx_sinkhole_ip

    # -- reachability -------------------------------------------------------

    def mark_reachable(self, ip: str) -> None:
        if ip not in self._reachable_ips:
            self.mutations += 1
        self._reachable_ips.add(ip)

    def http_get(self, ip: Optional[str]) -> bool:
        """``True`` when an HTTP request to ``ip`` would get a response."""
        return ip is not None and ip in self._reachable_ips

    def http_get_domain(self, name: str) -> bool:
        """Resolve ``name`` and probe it — the WannaCry kill-switch path."""
        return self.http_get(self.resolve(name))

    # -- snapshot --------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "adapters": [dataclasses.replace(a) for a in self._adapters],
            "zones": dict(self._zones),
            "reachable": set(self._reachable_ips),
            "sinkhole": self._nx_sinkhole_ip,
            "log": list(self.query_log),
        }

    def restore(self, state: dict) -> None:
        self._adapters = [dataclasses.replace(a) for a in state["adapters"]]
        self._zones = dict(state["zones"])
        self._reachable_ips = set(state["reachable"])
        self._nx_sinkhole_ip = state["sinkhole"]
        self.query_log = list(state["log"])
        self.mutations += 1
