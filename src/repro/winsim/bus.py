"""Machine-wide event bus.

Every observable action in the simulation — API calls, file writes,
registry mutations, process creation/termination, DNS queries — is
published here as a :class:`KernelEvent`. The Fibratus-substitute tracer
(:mod:`repro.analysis.tracer`) is just a subscriber; so is Scarecrow's
controller when it records fingerprint attempts.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List


@dataclasses.dataclass(frozen=True)
class KernelEvent:
    """One machine-level event.

    ``category`` mirrors Fibratus event classes: ``process``, ``thread``,
    ``file``, ``registry``, ``net``, ``image`` (DLL load/unload), ``api``.
    ``name`` is the concrete operation (``CreateProcess``, ``RegOpenKey``,
    ``WriteFile``...). ``pid`` is the acting process. ``details`` carries
    operation-specific fields (paths, key names, domains, flags).
    """

    category: str
    name: str
    pid: int
    timestamp_ns: int
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def detail(self, key: str, default: Any = None) -> Any:
        return self.details.get(key, default)


Subscriber = Callable[[KernelEvent], None]


class EventBus:
    """Synchronous fan-out publisher."""

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Attach ``callback``; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    def publish(self, event: KernelEvent) -> None:
        for callback in list(self._subscribers):
            callback(event)

    def emit(self, category: str, name: str, pid: int, timestamp_ns: int,
             /, **details: Any) -> KernelEvent:
        event = KernelEvent(category, name, pid, timestamp_ns, details)
        self.publish(event)
        return event

    def clear_subscribers(self) -> None:
        """Drop every subscriber.

        Used by :meth:`~repro.winsim.machine.Machine.restore_state`:
        callbacks cannot be captured in a state snapshot, and a restored
        machine must not keep publishing to tracers or controllers that
        belonged to a previous run.
        """
        self._subscribers.clear()

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
