"""Per-table / per-figure experiment harness."""

from .casestudies import (CaseStudyResult, KasidetResult, render_case1,
                          render_case2, run_case1, run_case2)
from .figure4 import (Figure4Result, PAPER_DEACTIVATED,
                      PAPER_DEACTIVATION_RATE, PAPER_SELF_SPAWNING,
                      PAPER_SELF_SPAWNING_IDP, PAPER_SYMMI, PAPER_TOTAL,
                      render_figure4, run_figure4)
from .overhead import (OverheadResult, OverheadRow, render_overhead,
                       run_overhead)
from .report import check_mark, render_kv, render_table
from .runner import PairOutcome, run_pair, run_pairs
from .table1 import (Table1Row, effectiveness_count, render_table1,
                     run_table1)
from .table2 import (ENVIRONMENTS, PAPER_TABLE2, Table2Cell,
                     indistinguishability_report, matches_paper,
                     render_table2, run_table2, table2_matrix)
from .table3 import Table3Result, render_table3, run_table3

__all__ = [
    "CaseStudyResult", "ENVIRONMENTS", "Figure4Result", "KasidetResult",
    "PAPER_DEACTIVATED", "PAPER_DEACTIVATION_RATE", "PAPER_SELF_SPAWNING",
    "PAPER_SELF_SPAWNING_IDP", "PAPER_SYMMI", "PAPER_TABLE2", "PAPER_TOTAL",
    "OverheadResult", "OverheadRow", "PairOutcome", "Table1Row", "Table2Cell",
    "Table3Result", "check_mark", "render_overhead", "run_overhead",
    "effectiveness_count", "matches_paper", "render_case1", "render_case2",
    "indistinguishability_report", "render_figure4", "render_kv",
    "render_table", "render_table1",
    "render_table2", "render_table3", "run_case1", "run_case2",
    "run_figure4", "run_pair", "run_pairs", "run_table1", "run_table2",
    "run_table3", "table2_matrix",
]
