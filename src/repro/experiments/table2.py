"""Experiment E3 — Table II: Pafish across three environments × two configs.

Launch procedure per environment mirrors the paper's setup:

* bare-metal sandbox: launched by the node's agent daemon;
* Cuckoo/VirtualBox sandbox: launched by the analyzer with the Cuckoo
  monitor injected (its ``ShellExecuteExW`` hook is Pafish's Hook hit);
  the with-Scarecrow run uses the *hardened* VM (modified CPUID results,
  updated MAC, custom DMI strings), as the paper describes;
* end-user machine: double-clicked (parent ``explorer.exe``); the
  with-Scarecrow deployment disables username deception (a deployment
  policy choice documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..analysis.environments import (build_bare_metal_sandbox,
                                     build_cuckoo_vm_sandbox,
                                     build_end_user_machine)
from ..analysis.sandbox import SandboxRunner
from ..core.controller import ScarecrowController
from ..core.profiles import ScarecrowConfig
from ..fingerprint.pafish import CATEGORY_ORDER, PafishReport, run_pafish
from ..winapi.calling import bind
from .report import render_table

ENVIRONMENTS = ("Bare-metal sandbox", "Virtual machine sandbox",
                "End-user machine")

#: Table II as printed in the paper: category -> (env, config) -> count.
PAPER_TABLE2: Dict[str, Dict[Tuple[str, bool], int]] = {}
_PAPER_ROWS = {
    "Debuggers": (1, 0, 1, 0, 1, 0),
    "CPU information": (0, 0, 0, 3, 1, 1),
    "Generic sandbox": (10, 1, 9, 3, 9, 1),
    "Hook": (2, 0, 2, 1, 2, 0),
    "Sandboxie": (1, 0, 1, 0, 1, 0),
    "Wine": (2, 0, 2, 0, 2, 0),
    "VirtualBox": (14, 0, 14, 16, 14, 0),
    "VMware": (4, 0, 4, 0, 4, 1),
    "Qemu detection": (1, 0, 1, 0, 1, 0),
    "Bochs": (1, 0, 1, 0, 1, 0),
    "Cuckoo": (0, 0, 0, 0, 0, 0),
}
for _category, _counts in _PAPER_ROWS.items():
    PAPER_TABLE2[_category] = {
        (ENVIRONMENTS[0], True): _counts[0],
        (ENVIRONMENTS[0], False): _counts[1],
        (ENVIRONMENTS[1], True): _counts[2],
        (ENVIRONMENTS[1], False): _counts[3],
        (ENVIRONMENTS[2], True): _counts[4],
        (ENVIRONMENTS[2], False): _counts[5],
    }


@dataclasses.dataclass
class Table2Cell:
    environment: str
    with_scarecrow: bool
    report: PafishReport

    def count(self, category: str) -> int:
        return self.report.category_counts()[category]


def _run_bare_metal(with_scarecrow: bool) -> PafishReport:
    machine = build_bare_metal_sandbox()
    if with_scarecrow:
        controller = ScarecrowController(machine)
        process = controller.launch("C:\\analysis\\pafish.exe")
    else:
        runner = SandboxRunner(machine, daemon_name="pythonw.exe")
        process = runner.launch("C:\\analysis\\pafish.exe")
    return run_pafish(bind(machine, process))


def _run_vm_sandbox(with_scarecrow: bool) -> PafishReport:
    machine = build_cuckoo_vm_sandbox(transparent=with_scarecrow)
    runner = SandboxRunner(machine, daemon_name="analyzer.exe",
                           inject_monitor=True)
    if with_scarecrow:
        controller = ScarecrowController(machine)
        process = controller.launch(
            "C:\\Users\\user\\AppData\\Local\\Temp\\pafish.exe")
    else:
        process = runner.launch(
            "C:\\Users\\user\\AppData\\Local\\Temp\\pafish.exe")
    return run_pafish(bind(machine, process))


def _run_end_user(with_scarecrow: bool) -> PafishReport:
    machine = build_end_user_machine()
    if with_scarecrow:
        controller = ScarecrowController(
            machine, config=ScarecrowConfig(enable_username=False))
        process = controller.launch("C:\\Users\\john\\Downloads\\pafish.exe")
    else:
        process = machine.spawn_process(
            "pafish.exe", "C:\\Users\\john\\Downloads\\pafish.exe",
            parent=machine.explorer)
    return run_pafish(bind(machine, process))


#: (environment label, module-level cell runner) — picklable for workers.
_CELL_RUNNERS = ((ENVIRONMENTS[0], _run_bare_metal),
                 (ENVIRONMENTS[1], _run_vm_sandbox),
                 (ENVIRONMENTS[2], _run_end_user))


def run_table2(max_workers: int = 1) -> List[Table2Cell]:
    """Run the 3×2 Pafish matrix; cells are independent, so they shard
    across the parallel task engine when ``max_workers > 1``."""
    from ..parallel import run_tasks_or_raise
    combos = [(environment, runner, with_scarecrow)
              for environment, runner in _CELL_RUNNERS
              for with_scarecrow in (True, False)]
    specs = [(f"{env}/{'scarecrow' if ws else 'bare'}", runner, (ws,))
             for env, runner, ws in combos]
    reports = run_tasks_or_raise(specs, max_workers=max_workers)
    return [Table2Cell(env, ws, report)
            for (env, _, ws), report in zip(combos, reports)]


def table2_matrix(cells: List[Table2Cell]
                  ) -> Dict[str, Dict[Tuple[str, bool], int]]:
    matrix: Dict[str, Dict[Tuple[str, bool], int]] = {
        category: {} for category in CATEGORY_ORDER}
    for cell in cells:
        counts = cell.report.category_counts()
        for category in CATEGORY_ORDER:
            matrix[category][(cell.environment,
                              cell.with_scarecrow)] = counts[category]
    return matrix


def matches_paper(cells: List[Table2Cell]) -> bool:
    matrix = table2_matrix(cells)
    return all(matrix[category] == PAPER_TABLE2[category]
               for category in CATEGORY_ORDER)


def indistinguishability_report(cells: List[Table2Cell]
                                ) -> Dict[str, List[str]]:
    """Per-check agreement across the three with-Scarecrow environments.

    Returns ``{"agree": [...], "differ": [...]}`` over individual Pafish
    checks. The paper's claim is that the environments become
    indistinguishable; the residual differences should all be
    timing-rooted (CPU checks, the mouse probe, sleep/VHD edge checks).
    """
    with_cells = [cell for cell in cells if cell.with_scarecrow]
    agree: List[str] = []
    differ: List[str] = []
    names = with_cells[0].report.results.keys()
    for name in names:
        values = {cell.report.results[name] for cell in with_cells}
        (agree if len(values) == 1 else differ).append(name)
    return {"agree": sorted(agree), "differ": sorted(differ)}


def render_table2(cells: List[Table2Cell]) -> str:
    matrix = table2_matrix(cells)
    headers = ["Feature category"]
    for environment in ENVIRONMENTS:
        headers.extend([f"{environment} w/", f"{environment} w/o"])
    rows = []
    for category in CATEGORY_ORDER:
        row = [category]
        for environment in ENVIRONMENTS:
            row.append(matrix[category][(environment, True)])
            row.append(matrix[category][(environment, False)])
        rows.append(row)
    table = render_table(headers, rows,
                         title="Table II - SCARECROW vs Pafish")
    verdict = ("\nAll cells match the paper."
               if matches_paper(cells) else
               "\nWARNING: some cells diverge from the paper.")
    return table + verdict
