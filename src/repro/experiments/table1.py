"""Experiment E1 — Table I: effectiveness of Scarecrow on 𝓜_JS.

Each of the 13 Joe Security samples runs on a bare-metal-sandbox machine
with and without Scarecrow (the paper ran both "at about the same time");
rows report observed behaviour, the first trigger Scarecrow reported, and
the deactivation verdict, which is checked against the paper's ✓/✗ column.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..malware.joesec import (Table1Expectation, build_joesec_samples,
                              expectation_for)
from .report import check_mark, render_table
from .runner import PairOutcome, run_pairs


@dataclasses.dataclass
class Table1Row:
    md5_prefix: str
    behaviour_without: str
    behaviour_with: str
    trigger: str
    effective: bool
    expectation: Optional[Table1Expectation]

    @property
    def matches_paper(self) -> bool:
        return self.expectation is not None and \
            self.effective == self.expectation.effective


def _behaviour_without(outcome: PairOutcome) -> str:
    result = outcome.without.result
    if result.payload_outcome is not None:
        return result.payload_outcome.description
    return "no payload observed"


def _behaviour_with(outcome: PairOutcome) -> str:
    result = outcome.with_scarecrow.result
    if result.executed_payload and result.payload_outcome is not None:
        return result.payload_outcome.description
    action = result.evade_action.value if result.evade_action else "none"
    return f"evaded ({action})"


def run_table1(max_workers: int = 1) -> List[Table1Row]:
    samples = build_joesec_samples()
    outcomes = run_pairs(samples, max_workers=max_workers)
    rows: List[Table1Row] = []
    for sample, outcome in zip(samples, outcomes):
        scarecrow_trigger = outcome.with_scarecrow.result.trigger
        rows.append(Table1Row(
            md5_prefix=sample.md5[:7],
            behaviour_without=_behaviour_without(outcome),
            behaviour_with=_behaviour_with(outcome),
            trigger=scarecrow_trigger or "N/A",
            effective=outcome.comparison.deactivated,
            expectation=expectation_for(sample.md5)))
    return rows


def effectiveness_count(rows: List[Table1Row]) -> int:
    return sum(1 for row in rows if row.effective)


def render_table1(rows: List[Table1Row]) -> str:
    body = [(row.md5_prefix, row.behaviour_without, row.behaviour_with,
             row.trigger, check_mark(row.effective),
             check_mark(row.matches_paper)) for row in rows]
    table = render_table(
        ("Sample", "Without SCARECROW", "With SCARECROW", "Trigger", "Eff.",
         "Matches paper"),
        body, title="Table I - Effectiveness of SCARECROW (M_JS)")
    summary = (f"\n{effectiveness_count(rows)}/{len(rows)} samples "
               "deactivated (paper: 12/13)")
    return table + summary
