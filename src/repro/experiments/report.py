"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with column alignment (paper-style output)."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index])
                          for index, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def render_kv(title: str, pairs: Iterable[Sequence[object]]) -> str:
    """Simple aligned key/value block."""
    materialized = [(str(key), str(value)) for key, value in pairs]
    width = max((len(key) for key, _ in materialized), default=0)
    lines = [title, "=" * len(title)] if title else []
    lines.extend(f"{key.ljust(width)} : {value}"
                 for key, value in materialized)
    return "\n".join(lines)


def check_mark(flag: bool) -> str:
    return "yes" if flag else "NO"
