"""Experiments E5/E6 — the Section V case studies.

Case I (Kasidet): a >10-predicate disjunction. The sandbox must defeat
every predicate; Scarecrow needs to satisfy exactly one.

Case II (ransomware): the WannaCry variant's NX-domain kill switch is
answered by Scarecrow's network deception before a single file is
encrypted; Locky and Cerber fall to the registry deception. The original
(non-evasive) WannaCry is the control — it encrypts regardless, delimiting
Scarecrow's scope.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..analysis.environments import build_end_user_machine
from ..malware.kasidet import KASIDET_CHECKS, build_kasidet
from ..malware.ransomware import (build_cerber_variant, build_locky,
                                  build_wannacry_original,
                                  build_wannacry_variant)
from .report import render_table
from .runner import PairOutcome, run_pair, run_pairs


def _end_user_factory():
    machine = build_end_user_machine()
    # User documents at risk: what ransomware would encrypt.
    for index in range(5):
        machine.filesystem.write_file(
            f"C:\\Users\\john\\Documents\\précieux_{index}.txt",
            b"irreplaceable data " + bytes([index]))
    return machine


@dataclasses.dataclass
class CaseStudyResult:
    sample_name: str
    md5: str
    outcome: PairOutcome

    @property
    def deactivated(self) -> bool:
        return self.outcome.comparison.deactivated

    @property
    def files_encrypted_without(self) -> int:
        result = self.outcome.without.result
        if result.payload_outcome is None:
            return 0
        return len(result.payload_outcome.files_encrypted)

    @property
    def files_encrypted_with(self) -> int:
        result = self.outcome.with_scarecrow.result
        if result.payload_outcome is None:
            return 0
        return len(result.payload_outcome.files_encrypted)

    @property
    def trigger(self) -> Optional[str]:
        return self.outcome.with_scarecrow.result.trigger


@dataclasses.dataclass
class KasidetResult:
    case: CaseStudyResult
    disjunction_size: int
    predicates_evaluated_with: int
    predicates_evaluated_without: int

    @property
    def single_predicate_sufficed(self) -> bool:
        """¬𝔻 needs only one pᵢ: Scarecrow stopped it at the first check."""
        return self.predicates_evaluated_with == 1


def run_case1() -> KasidetResult:
    sample = build_kasidet()
    outcome = run_pair(sample, machine_factory=_end_user_factory)
    case = CaseStudyResult("Kasidet.B", sample.md5, outcome)
    return KasidetResult(
        case=case,
        disjunction_size=len(KASIDET_CHECKS),
        predicates_evaluated_with=len(
            outcome.with_scarecrow.result.checks_evaluated),
        predicates_evaluated_without=len(
            outcome.without.result.checks_evaluated))


def run_case2(max_workers: int = 1) -> List[CaseStudyResult]:
    named = (("WannaCry variant", build_wannacry_variant),
             ("WannaCry original", build_wannacry_original),
             ("Locky", build_locky),
             ("Cerber variant", build_cerber_variant))
    samples = [builder() for _, builder in named]
    outcomes = run_pairs(samples, machine_factory=_end_user_factory,
                         max_workers=max_workers)
    return [CaseStudyResult(name, sample.md5, outcome)
            for (name, _), sample, outcome in zip(named, samples, outcomes)]


def render_case1(result: KasidetResult) -> str:
    rows = [
        ("disjunction size", result.disjunction_size),
        ("predicates evaluated without Scarecrow",
         result.predicates_evaluated_without),
        ("predicates evaluated with Scarecrow",
         result.predicates_evaluated_with),
        ("first trigger", result.case.trigger),
        ("deactivated", result.case.deactivated),
        ("single predicate sufficed", result.single_predicate_sufficed),
    ]
    return render_table(("Property", "Value"), rows,
                        title="Case I - Kasidet comprehensive evasive logic")


def render_case2(results: List[CaseStudyResult]) -> str:
    rows = [(r.sample_name, r.files_encrypted_without,
             r.files_encrypted_with, r.trigger or "-",
             "deactivated" if r.deactivated else "NOT deactivated")
            for r in results]
    return render_table(
        ("Sample", "Files encrypted w/o", "Files encrypted w/", "Trigger",
         "Verdict"),
        rows, title="Case II - ransomware deactivation")
