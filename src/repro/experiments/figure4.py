"""Experiment E2 — Figure 4 + the §IV-C.1 headline numbers on 𝓜_MG.

The full 1,054-sample corpus runs with and without Scarecrow on fresh
bare-metal-sandbox machines; verdicts follow the paper's procedure
(self-spawn loops, suppressed-activity diffing). Expected values:

* 944/1,054 deactivated (89.56%),
* 823 self-spawn loops, 815 of them via ``IsDebuggerPresent``,
* Symmi 484 total / 478 deactivated / 473 self-spawning.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..analysis.comparison import (ComparisonResult, CorpusSummary,
                                   FamilyBreakdown, aggregate_by_family,
                                   summarize)
from ..analysis.environments import build_bare_metal_sandbox
from ..malware.corpus import build_malgene_corpus
from ..malware.families import TOP10_FAMILY_SPECS
from ..malware.sample import EvasiveSample
from .report import render_kv, render_table
from .runner import run_pairs

#: Paper numbers the reproduction is checked against.
PAPER_TOTAL = 1054
PAPER_DEACTIVATED = 944
PAPER_DEACTIVATION_RATE = 0.8956
PAPER_SELF_SPAWNING = 823
PAPER_SELF_SPAWNING_IDP = 815
PAPER_SYMMI = {"total": 484, "deactivated": 478, "self_spawning": 473,
               "created_processes": 26, "modified_files_registry": 449}


@dataclasses.dataclass
class Figure4Result:
    summary: CorpusSummary
    families: Dict[str, FamilyBreakdown]
    results: List[ComparisonResult]

    def top_families(self, count: int = 10) -> List[FamilyBreakdown]:
        ordered = sorted(self.families.values(), key=lambda f: -f.total)
        return ordered[:count]


def _light_bare_metal():
    return build_bare_metal_sandbox(aged=False)


def run_figure4(samples: Optional[List[EvasiveSample]] = None,
                max_workers: int = 1) -> Figure4Result:
    """Run the corpus (default: all 1,054 samples) and fold the results.

    ``max_workers`` shards the corpus across the parallel sweep engine;
    verdicts are identical at any worker count.
    """
    corpus = samples if samples is not None else build_malgene_corpus()
    outcomes = run_pairs(corpus, machine_factory=_light_bare_metal,
                         max_workers=max_workers)
    results = [outcome.comparison for outcome in outcomes]
    return Figure4Result(summary=summarize(results),
                         families=aggregate_by_family(results),
                         results=results)


def render_figure4(result: Figure4Result) -> str:
    summary = result.summary
    headline = render_kv(
        "M_MG headline numbers (paper in parentheses)",
        [("samples", f"{summary.total} ({PAPER_TOTAL})"),
         ("deactivated",
          f"{summary.deactivated} ({PAPER_DEACTIVATED})"),
         ("deactivation rate",
          f"{summary.deactivation_rate:.2%} ({PAPER_DEACTIVATION_RATE:.2%})"),
         ("self-spawn loops",
          f"{summary.self_spawning} ({PAPER_SELF_SPAWNING})"),
         ("self-spawners using IsDebuggerPresent",
          f"{summary.self_spawning_using_idp} ({PAPER_SELF_SPAWNING_IDP})"),
         ("inconclusive (Selfdel-style)", summary.inconclusive),
         ("not deactivated", summary.not_deactivated)])
    rows = [(family.family, family.total, family.deactivated,
             family.self_spawning, family.created_processes_without,
             family.modified_files_registry_without,
             f"{family.deactivation_rate:.1%}")
            for family in result.top_families(10)]
    table = render_table(
        ("Family", "Total", "Deactivated", "Self-spawn",
         "Created procs (w/o)", "Modified files/reg (w/o)", "Rate"),
        rows, title="Figure 4 - top-10 families")
    return headline + "\n\n" + table


def top10_family_names() -> List[str]:
    return [spec.name for spec in TOP10_FAMILY_SPECS]
