"""Experiment E4 — Table III: wear-and-tear artifacts faked by Scarecrow.

On the actively-used end-user machine, the wear-and-tear fingerprinting
tool (our Miramirkhani reimplementation) classifies the bare machine as
*real*; with Scarecrow's wear-and-tear extension enabled, every faked
artifact reads a sandbox-typical value and the classifier flips to
*sandbox*. The per-artifact rows reproduce Table III's faked resources and
associated APIs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..analysis.environments import (build_bare_metal_sandbox,
                                     build_end_user_machine)
from ..core.controller import ScarecrowController
from ..core.profiles import ScarecrowConfig
from ..core.weartear import TABLE3_ROWS, WearTearRow
from ..fingerprint.weartear import Classification, classify, \
    measure_artifacts
from ..winapi.calling import bind
from .report import render_table

#: Table III artifact label -> measured artifact name.
_ARTIFACT_NAME_MAP = {
    "dnscacheEntries": "dnscacheEntries",
    "sysevt": "sysevt",
    "syssrc": "syssrc",
    "deviceClsCount": "deviceClsCount",
    "autoRunCount": "autoRunCount",
    "regSize": "regSize",
    "uninstallCount": "uninstallCount",
    "totalSharedDlls": "totalSharedDlls",
    "totalAppPaths": "totalAppPaths",
    "totalActiveSetup": "totalActiveSetup",
    "totalMissingDlls": "totalMissingDlls",
    "usrassistCount": "usrassistCount",
    "shimCacheCount": "shimCacheCount",
    "MUICacheEntries": "MUICacheEntries",
    "FireruleCount()": "FireruleCount",
    "USBStorCount": "USBStorCount",
}


@dataclasses.dataclass
class Table3Result:
    rows: List[WearTearRow]
    values_without: Dict[str, float]
    values_with: Dict[str, float]
    values_sandbox: Dict[str, float]
    verdict_without: Classification
    verdict_with: Classification
    verdict_sandbox: Classification

    @property
    def scarecrow_flips_verdict(self) -> bool:
        return (not self.verdict_without.is_sandbox) and \
            self.verdict_with.is_sandbox

    def faked_value(self, artifact_label: str) -> Optional[float]:
        name = _ARTIFACT_NAME_MAP.get(artifact_label)
        return self.values_with.get(name) if name else None

    def real_value(self, artifact_label: str) -> Optional[float]:
        name = _ARTIFACT_NAME_MAP.get(artifact_label)
        return self.values_without.get(name) if name else None


def _measure_end_user_bare() -> Dict[str, float]:
    """End-user machine, bare."""
    machine = build_end_user_machine()
    process = machine.spawn_process(
        "weartool.exe", "C:\\Users\\john\\Downloads\\weartool.exe",
        parent=machine.explorer)
    return measure_artifacts(bind(machine, process))


def _measure_end_user_protected() -> Dict[str, float]:
    """Same machine model, Scarecrow with the wear-and-tear extension."""
    protected = build_end_user_machine()
    controller = ScarecrowController(
        protected, config=ScarecrowConfig(enable_weartear=True,
                                          enable_username=False))
    target = controller.launch("C:\\Users\\john\\Downloads\\weartool.exe")
    return measure_artifacts(bind(protected, target))


def _measure_pristine_sandbox() -> Dict[str, float]:
    """Reference: a genuine pristine sandbox."""
    sandbox = build_bare_metal_sandbox()
    sandbox_proc = sandbox.spawn_process(
        "weartool.exe", "C:\\analysis\\weartool.exe", parent=sandbox.explorer)
    return measure_artifacts(bind(sandbox, sandbox_proc))


def run_table3(max_workers: int = 1) -> Table3Result:
    """Measure the three independent machines (shardable across workers)."""
    from ..parallel import run_tasks_or_raise
    values_without, values_with, values_sandbox = run_tasks_or_raise(
        [("end-user/bare", _measure_end_user_bare, ()),
         ("end-user/scarecrow", _measure_end_user_protected, ()),
         ("sandbox/reference", _measure_pristine_sandbox, ())],
        max_workers=max_workers)

    return Table3Result(
        rows=list(TABLE3_ROWS),
        values_without=values_without, values_with=values_with,
        values_sandbox=values_sandbox,
        verdict_without=classify(values_without),
        verdict_with=classify(values_with),
        verdict_sandbox=classify(values_sandbox))


def render_table3(result: Table3Result) -> str:
    body = []
    for row in result.rows:
        real = result.real_value(row.artifact)
        faked = result.faked_value(row.artifact)
        body.append((row.category, row.artifact,
                     f"{real:g}" if real is not None else "-",
                     f"{faked:g}" if faked is not None else "-",
                     ", ".join(row.associated_apis)))
    table = render_table(
        ("Category", "Artifact", "End-user value", "Faked value",
         "Associated APIs"),
        body, title="Table III - wear-and-tear artifacts faked by SCARECROW")
    verdicts = (
        f"\nClassifier verdicts: end-user w/o = {result.verdict_without.label}"
        f", end-user w/ SCARECROW = {result.verdict_with.label}"
        f", bare-metal sandbox = {result.verdict_sandbox.label}")
    return table + verdicts
