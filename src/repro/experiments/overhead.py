"""Experiment E8 — the Section III "negligible performance overhead" claim.

Measures wall-clock cost of representative API calls with and without
Scarecrow's hook chain, plus the one-time cost of protecting a process.
Absolute numbers are simulation-host costs; the reported artifact is the
*ratio*, which is what the paper's claim is about.

Timing uses the shared :class:`~repro.telemetry.metrics.LatencyHistogram`
primitive (one host-clock sample per iteration) instead of a bespoke
``timeit`` loop, so the experiment reports the same mean/percentile
statistics the telemetry layer exports everywhere else.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Tuple

from ..core.controller import ScarecrowController
from ..telemetry.metrics import LatencyHistogram
from ..winapi.calling import ApiContext, bind
from ..winsim.machine import Machine
from .report import render_table


@dataclasses.dataclass
class OverheadRow:
    operation: str
    unhooked_us: float
    hooked_us: float
    unhooked_p99_us: float = 0.0
    hooked_p99_us: float = 0.0

    @property
    def ratio(self) -> float:
        return self.hooked_us / self.unhooked_us if self.unhooked_us else 0.0


@dataclasses.dataclass
class OverheadResult:
    rows: List[OverheadRow]
    launch_cost_us: float

    def max_ratio(self) -> float:
        return max(row.ratio for row in self.rows)


_OPERATIONS: Tuple[Tuple[str, Callable[[ApiContext], object]], ...] = (
    ("IsDebuggerPresent", lambda api: api.IsDebuggerPresent()),
    ("GetTickCount", lambda api: api.GetTickCount()),
    ("GetFileAttributesA (miss)",
     lambda api: api.GetFileAttributesA("C:\\bench-miss.bin")),
    ("RegOpenKeyExA (real key)",
     lambda api: api.RegOpenKeyExA(
         "HKEY_LOCAL_MACHINE",
         "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion")),
    ("GlobalMemoryStatusEx", lambda api: api.GlobalMemoryStatusEx()),
)


def _bare_api() -> ApiContext:
    machine = Machine().boot()
    process = machine.spawn_process("bench.exe", parent=machine.explorer)
    api = bind(machine, process)
    api.quiet = True
    return api


def _hooked_api() -> ApiContext:
    machine = Machine().boot()
    controller = ScarecrowController(machine)
    target = controller.launch("C:\\dl\\bench.exe")
    api = bind(machine, target)
    api.quiet = True
    return api


def _measure(api: ApiContext, operation,
             iterations: int) -> LatencyHistogram:
    """Host-clock latency histogram of ``iterations`` calls."""
    histogram = LatencyHistogram("wallclock.overhead_ns")
    for _ in range(iterations):
        start = time.perf_counter_ns()
        result = operation(api)
        histogram.record(time.perf_counter_ns() - start)
        # Registry opens allocate handles; close them as real callers would
        # (outside the timed region — the probe is the open, not the close).
        if isinstance(result, tuple) and len(result) == 2 and result[1]:
            api.RegCloseKey(result[1])
    return histogram


def run_overhead(iterations: int = 2000) -> OverheadResult:
    bare = _bare_api()
    hooked = _hooked_api()
    rows = []
    for name, operation in _OPERATIONS:
        bare_h = _measure(bare, operation, iterations)
        hooked_h = _measure(hooked, operation, iterations)
        rows.append(OverheadRow(
            name, bare_h.mean / 1e3, hooked_h.mean / 1e3,
            unhooked_p99_us=bare_h.percentile(99) / 1e3,
            hooked_p99_us=hooked_h.percentile(99) / 1e3))

    launch_h = LatencyHistogram("wallclock.launch_ns")
    for _ in range(50):
        start = time.perf_counter_ns()
        machine = Machine().boot()
        ScarecrowController(machine).launch("C:\\dl\\t.exe")
        launch_h.record(time.perf_counter_ns() - start)
    return OverheadResult(rows, launch_h.mean / 1e3)


def render_overhead(result: OverheadResult) -> str:
    body = [(row.operation, f"{row.unhooked_us:.2f}",
             f"{row.hooked_us:.2f}", f"{row.hooked_p99_us:.2f}",
             f"{row.ratio:.2f}x")
            for row in result.rows]
    table = render_table(
        ("API call", "Unhooked (us)", "Hooked (us)", "Hooked p99 (us)",
         "Ratio"),
        body, title="E8 - hook-chain overhead")
    return (table +
            f"\nOne-time protect-a-process cost: "
            f"{result.launch_cost_us:.0f} us "
            "(spawn + inject + install ~46 hooks)")
