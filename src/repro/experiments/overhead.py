"""Experiment E8 — the Section III "negligible performance overhead" claim.

Measures wall-clock cost of representative API calls with and without
Scarecrow's hook chain, plus the one-time cost of protecting a process.
Absolute numbers are simulation-host costs; the reported artifact is the
*ratio*, which is what the paper's claim is about.
"""

from __future__ import annotations

import dataclasses
import timeit
from typing import Callable, Dict, List, Tuple

from ..core.controller import ScarecrowController
from ..winapi.calling import ApiContext, bind
from ..winsim.machine import Machine
from .report import render_table


@dataclasses.dataclass
class OverheadRow:
    operation: str
    unhooked_us: float
    hooked_us: float

    @property
    def ratio(self) -> float:
        return self.hooked_us / self.unhooked_us if self.unhooked_us else 0.0


@dataclasses.dataclass
class OverheadResult:
    rows: List[OverheadRow]
    launch_cost_us: float

    def max_ratio(self) -> float:
        return max(row.ratio for row in self.rows)


_OPERATIONS: Tuple[Tuple[str, Callable[[ApiContext], object]], ...] = (
    ("IsDebuggerPresent", lambda api: api.IsDebuggerPresent()),
    ("GetTickCount", lambda api: api.GetTickCount()),
    ("GetFileAttributesA (miss)",
     lambda api: api.GetFileAttributesA("C:\\bench-miss.bin")),
    ("RegOpenKeyExA (real key)",
     lambda api: api.RegOpenKeyExA(
         "HKEY_LOCAL_MACHINE",
         "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion")),
    ("GlobalMemoryStatusEx", lambda api: api.GlobalMemoryStatusEx()),
)


def _bare_api() -> ApiContext:
    machine = Machine().boot()
    process = machine.spawn_process("bench.exe", parent=machine.explorer)
    api = bind(machine, process)
    api.quiet = True
    return api


def _hooked_api() -> ApiContext:
    machine = Machine().boot()
    controller = ScarecrowController(machine)
    target = controller.launch("C:\\dl\\bench.exe")
    api = bind(machine, target)
    api.quiet = True
    return api


def _measure_us(api: ApiContext, operation, iterations: int) -> float:
    # Registry opens allocate handles; close them as real callers would.
    def once():
        result = operation(api)
        if isinstance(result, tuple) and len(result) == 2 and result[1]:
            api.RegCloseKey(result[1])

    total = timeit.timeit(once, number=iterations)
    return total / iterations * 1e6


def run_overhead(iterations: int = 2000) -> OverheadResult:
    bare = _bare_api()
    hooked = _hooked_api()
    rows = [OverheadRow(name,
                        _measure_us(bare, operation, iterations),
                        _measure_us(hooked, operation, iterations))
            for name, operation in _OPERATIONS]

    def launch_once():
        machine = Machine().boot()
        ScarecrowController(machine).launch("C:\\dl\\t.exe")

    launch_us = timeit.timeit(launch_once, number=50) / 50 * 1e6
    return OverheadResult(rows, launch_us)


def render_overhead(result: OverheadResult) -> str:
    body = [(row.operation, f"{row.unhooked_us:.2f}",
             f"{row.hooked_us:.2f}", f"{row.ratio:.2f}x")
            for row in result.rows]
    table = render_table(
        ("API call", "Unhooked (us)", "Hooked (us)", "Ratio"),
        body, title="E8 - hook-chain overhead")
    return (table +
            f"\nOne-time protect-a-process cost: "
            f"{result.launch_cost_us:.0f} us "
            "(spawn + inject + install ~46 hooks)")
