"""Shared run-sample-in-environment plumbing for the experiment modules."""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Union

from ..analysis.agent import RunRecord, run_sample
from ..analysis.comparison import ComparisonResult, compare_runs
from ..analysis.environments import build_bare_metal_sandbox
from ..core.database import DeceptionDatabase
from ..core.profiles import ScarecrowConfig
from ..malware.sample import EvasiveSample
from ..winsim.machine import Machine

MachineFactory = Callable[[], Machine]
#: Mirrors :data:`repro.parallel.worker.TemplateMode` (kept literal here so
#: importing the runner never pulls the parallel package in eagerly).
TemplateMode = Union[bool, str]


@dataclasses.dataclass
class PairOutcome:
    """One sample executed in both configurations, plus the verdict."""

    sample: EvasiveSample
    without: RunRecord
    with_scarecrow: RunRecord
    comparison: ComparisonResult


def run_pair(sample: EvasiveSample,
             machine_factory: Optional[MachineFactory] = None,
             database: Optional[DeceptionDatabase] = None,
             config: Optional[ScarecrowConfig] = None) -> PairOutcome:
    """Run ``sample`` with and without Scarecrow on fresh machines."""
    factory = machine_factory or build_bare_metal_sandbox
    record_without = run_sample(factory(), sample, with_scarecrow=False)
    record_with = run_sample(factory(), sample, with_scarecrow=True,
                             database=database, config=config)
    comparison = compare_runs(
        sample, record_without.trace, record_without.result,
        record_with.trace, record_with.result,
        record_without.root_pid, record_with.root_pid)
    return PairOutcome(sample, record_without, record_with, comparison)


def run_pairs(samples: List[EvasiveSample],
              machine_factory: Optional[MachineFactory] = None,
              database: Optional[DeceptionDatabase] = None,
              config: Optional[ScarecrowConfig] = None,
              max_workers: int = 1,
              template: "TemplateMode" = True,
              chunksize: Optional[int] = None) -> List[PairOutcome]:
    """Corpus-scale sweep with one shared (read-only) deception database.

    Delegates to :class:`repro.parallel.ParallelSweep`; ``max_workers=1``
    (the default) runs in-process, larger values shard the corpus across a
    worker pool with identical ordered output. ``template`` (default on)
    reuses one machine per worker via snapshot/restore instead of
    rebuilding per run — byte-identical results, much cheaper; pass
    ``"verify"`` to prove that per job, or ``False`` for the historical
    rebuild-every-run behaviour. ``chunksize`` batches jobs per pool
    submission (None = auto). Failures raise, as the historical serial
    path did — use :class:`~repro.parallel.ParallelSweep` directly for the
    graceful-degradation surface (per-sample errors, retry counts,
    execution stats).
    """
    from ..parallel import ParallelSweep
    sweep = ParallelSweep(max_workers=max_workers,
                          machine_factory=machine_factory,
                          database=database, config=config,
                          template=template, chunksize=chunksize)
    return sweep.run(samples).outcomes_or_raise()
