"""Scarecrow — the paper's primary contribution.

Public entry point: create a :class:`ScarecrowController` on a machine and
``launch()`` untrusted programs through it.
"""

from .collector import (CrawlerReport, ResourceDiff,
                        collect_from_public_sandboxes, diff_reports,
                        extend_database, run_crawler)
from .controller import CONTROLLER_IMAGE, ScarecrowController
from .database import (ANALYSIS_DLLS, COMBINED_BIOS_VERSION,
                       CURATED_REGISTRY_KEYS, DatabaseSnapshot,
                       DeceptionDatabase, FakeHardwareProfile,
                       FakeIdentityProfile, FakeNetworkProfile,
                       FrozenDatabaseError, FrozenDeceptionDatabase,
                       PROTECTED_PROCESSES, WearTearProfile)
from .dll import ScarecrowDll
from .engine import DeceptionEngine
from .events import FingerprintEvent, FingerprintLog
from .handlers import CORE_29_APIS, DECOY_APIS, build_handlers
from .policy import (DEFAULT_LOOP_THRESHOLD, SpawnLoopAlarm, SpawnLoopPolicy)
from .profiles import (ALL_PROFILES, COMPATIBLE_PROFILES, ProfileManager,
                       ScarecrowConfig, VM_PROFILES)
from .resources import DeceptiveResource, Origin, ResourceCategory
from .serialization import (dump_config, dump_database, load_config,
                            load_database, load_database_file,
                            save_database)
from .vaccine import (FamilyVaccine, KNOWN_VACCINES, VaccinationAgent,
                      build_marker_gated_corpus)
from .weartear import TABLE3_ROWS, WearTearRow, enable_weartear

__all__ = [
    "ALL_PROFILES", "ANALYSIS_DLLS", "CONTROLLER_IMAGE", "CORE_29_APIS",
    "COMBINED_BIOS_VERSION", "COMPATIBLE_PROFILES", "CURATED_REGISTRY_KEYS",
    "CrawlerReport", "DECOY_APIS", "DEFAULT_LOOP_THRESHOLD",
    "DatabaseSnapshot", "DeceptionDatabase", "DeceptionEngine",
    "DeceptiveResource",
    "FakeHardwareProfile", "FakeIdentityProfile", "FakeNetworkProfile",
    "FamilyVaccine", "FingerprintEvent", "FingerprintLog",
    "FrozenDatabaseError", "FrozenDeceptionDatabase", "KNOWN_VACCINES",
    "Origin", "PROTECTED_PROCESSES", "VaccinationAgent",
    "build_marker_gated_corpus",
    "ProfileManager", "ResourceCategory", "ResourceDiff", "ScarecrowConfig",
    "ScarecrowController", "ScarecrowDll", "SpawnLoopAlarm",
    "SpawnLoopPolicy", "TABLE3_ROWS", "VM_PROFILES", "WearTearProfile",
    "WearTearRow", "build_handlers", "collect_from_public_sandboxes",
    "diff_reports", "dump_config", "dump_database", "enable_weartear",
    "extend_database", "load_config", "load_database", "load_database_file",
    "run_crawler", "save_database",
]
