"""Hook handlers — the deceptive implementations behind the 29 hooked APIs.

Each handler closes over one :class:`~repro.core.engine.DeceptionEngine`.
The contract mirrors the paper's Section III-A: inspect the call's
parameters; when they touch a deceptive resource, answer with the
fabricated value and report the fingerprint attempt; otherwise fall through
to the genuine implementation via ``call.original``.

:data:`CORE_29_APIS` is the paper's "29 APIs that access SCARECROW
deceptive resources"; :func:`build_handlers` additionally wires the
CreateProcess child-following hook, the network sinkhole, the decoy hooks
(present only to be *detected*), and — when enabled — the wear-and-tear
handlers of Table III.
"""

from __future__ import annotations

import fnmatch
import zlib
from typing import Callable, Dict, Optional, Tuple

from ..hooking.inline import HookCall
from ..winsim.errors import NtStatus, Win32Error
from ..winsim.eventlog import EventRecord
from ..winsim.filesystem import (FILE_ATTRIBUTE_DIRECTORY,
                                 FILE_ATTRIBUTE_NORMAL)
from ..winsim.types import Handle, MemoryStatusEx, SystemInfo
from ..winapi.ntdll import ProcessInformationClass, SystemInformationClass
from .engine import DeceptionEngine
from .resources import ResourceCategory

#: The canonical 29 resource APIs of Section III-A.
CORE_29_APIS: Tuple[str, ...] = (
    "advapi32.dll!RegOpenKeyExA",
    "advapi32.dll!RegQueryValueExA",
    "advapi32.dll!RegEnumKeyExA",
    "advapi32.dll!RegQueryInfoKeyA",
    "ntdll.dll!NtOpenKeyEx",
    "ntdll.dll!NtQueryKey",
    "ntdll.dll!NtQueryValueKey",
    "ntdll.dll!NtEnumerateValueKey",
    "kernel32.dll!GetFileAttributesA",
    "kernel32.dll!CreateFileA",
    "kernel32.dll!FindFirstFileA",
    "ntdll.dll!NtQueryAttributesFile",
    "ntdll.dll!NtCreateFile",
    "ntdll.dll!NtQuerySystemInformation",
    "ntdll.dll!NtQueryInformationProcess",
    "kernel32.dll!GlobalMemoryStatusEx",
    "kernel32.dll!GetSystemInfo",
    "kernel32.dll!GetDiskFreeSpaceExA",
    "kernel32.dll!DeviceIoControl",
    "kernel32.dll!GetModuleHandleA",
    "kernel32.dll!LoadLibraryA",
    "kernel32.dll!GetProcAddress",
    "kernel32.dll!IsDebuggerPresent",
    "kernel32.dll!CheckRemoteDebuggerPresent",
    "kernel32.dll!GetTickCount",
    "advapi32.dll!GetUserNameA",
    "kernel32.dll!GetModuleFileNameA",
    "user32.dll!FindWindowA",
    "kernel32.dll!CreateToolhelp32Snapshot",
)

#: Wide-char exports routed through the same deception handlers as their
#: narrow siblings (Section VI-A's bypass discussion: leaving these
#: unhooked would let W-calling malware evade the deception).
W_VARIANT_ALIASES: Dict[str, str] = {
    "kernel32.dll!GetModuleHandleW": "kernel32.dll!GetModuleHandleA",
    "user32.dll!FindWindowW": "user32.dll!FindWindowA",
    "kernel32.dll!GetFileAttributesW": "kernel32.dll!GetFileAttributesA",
    "kernel32.dll!CreateFileW": "kernel32.dll!CreateFileA",
    "advapi32.dll!RegOpenKeyExW": "advapi32.dll!RegOpenKeyExA",
    "advapi32.dll!RegQueryValueExW": "advapi32.dll!RegQueryValueExA",
    "advapi32.dll!GetUserNameW": "advapi32.dll!GetUserNameA",
    "kernel32.dll!GetModuleFileNameW": "kernel32.dll!GetModuleFileNameA",
}

#: APIs hooked only so their patched prologues are *visible* to anti-hook
#: checks (sandboxes hook these; Scarecrow imitates the byte pattern).
DECOY_APIS: Tuple[str, ...] = (
    "shell32.dll!ShellExecuteExW",
    "kernel32.dll!DeleteFileA",
)

#: Base for fabricated module handles / window handles / pids.
_FAKE_MODULE_BASE = 0x6F000000
_FAKE_WINDOW_HWND = 0xDEC0
_FAKE_PID_BASE = 90000

Handler = Callable[..., object]


def _fake_module_handle(name: str) -> int:
    # crc32, not hash(): hash() is salted per process (PYTHONHASHSEED),
    # and pool workers must fabricate the same handle as the serial path.
    digest = zlib.crc32(name.lower().encode("utf-8", "replace"))
    return _FAKE_MODULE_BASE + (digest & 0xFFFF) * 0x10


def build_handlers(engine: DeceptionEngine) -> Dict[str, Handler]:
    """All hook handlers for ``engine``, keyed by export name."""
    handlers: Dict[str, Handler] = {}
    e = engine
    db = engine.db
    cfg = engine.config

    def report(call: HookCall, category: str, resource: str,
               profile: str = "", **details: object) -> None:
        e.report(category, call.export, resource, call.process.pid,
                 call.machine.clock.now_ns, profile=profile, **details)

    # -- registry ---------------------------------------------------------

    def open_key_common(call: HookCall, path: str,
                        native: bool) -> Optional[Handle]:
        """Deceptive open for both Reg/Nt flavours; None = fall through."""
        if cfg.enable_weartear:
            managed = db.weartear.managed_keys()
            for managed_path, (subkeys, values) in managed.items():
                if managed_path.lower() == path.lower().rstrip("\\"):
                    key = e.materialize_counted_key(managed_path, subkeys,
                                                    values)
                    report(call, "weartear", managed_path,
                           subkeys=subkeys, values=values)
                    return call.machine.handles.open(key, "key")
        if cfg.enable_software:
            resource = db.lookup_registry_key(path)
            if e.decide(resource):
                key = e.materialize_registry_key(path)
                report(call, "registry", path, profile=resource.profile)
                return call.machine.handles.open(key, "key")
        return None

    def reg_open_key(call: HookCall, hive: str, subkey: str):
        path = f"{hive}\\{subkey}" if subkey else hive
        handle = open_key_common(call, path, native=False)
        if handle is not None:
            return (Win32Error.ERROR_SUCCESS, handle)
        return call.original(hive, subkey)

    def nt_open_key(call: HookCall, path: str):
        handle = open_key_common(call, path, native=True)
        if handle is not None:
            return (NtStatus.STATUS_SUCCESS, handle)
        return call.original(path)

    def query_value_common(call: HookCall, handle: Handle, name: str):
        key = call.machine.handles.resolve(handle, "key")
        if key is not None and cfg.enable_software:
            resource = db.lookup_registry_value(key.path(), name)
            if e.decide(resource):
                report(call, "registry", resource.identity,
                       profile=resource.profile)
                return resource
        return None

    def reg_query_value(call: HookCall, handle: Handle, name: str):
        resource = query_value_common(call, handle, name)
        if resource is not None:
            return (Win32Error.ERROR_SUCCESS,
                    e.present_registry_data(resource))
        return call.original(handle, name)

    def nt_query_value(call: HookCall, handle: Handle, name: str):
        resource = query_value_common(call, handle, name)
        if resource is not None:
            return (NtStatus.STATUS_SUCCESS,
                    e.present_registry_data(resource))
        return call.original(handle, name)

    def passthrough(call: HookCall, *args, **kwargs):
        return call.original(*args, **kwargs)

    handlers["advapi32.dll!RegOpenKeyExA"] = reg_open_key
    handlers["ntdll.dll!NtOpenKeyEx"] = nt_open_key
    handlers["advapi32.dll!RegQueryValueExA"] = reg_query_value
    handlers["ntdll.dll!NtQueryValueKey"] = nt_query_value
    # Enumeration / info calls operate on (possibly materialized) handles;
    # hooked for parity with the paper's API list, behaviourally neutral.
    handlers["advapi32.dll!RegEnumKeyExA"] = passthrough
    handlers["advapi32.dll!RegQueryInfoKeyA"] = passthrough
    handlers["ntdll.dll!NtQueryKey"] = passthrough
    handlers["ntdll.dll!NtEnumerateValueKey"] = passthrough

    # -- files and devices ---------------------------------------------------

    def file_resource(path: str):
        if not cfg.enable_software:
            return None
        resource = db.lookup_file(path)
        return resource if e.decide(resource) else None

    def get_file_attributes(call: HookCall, path: str):
        resource = file_resource(path)
        if resource is not None:
            report(call, "file", path, profile=resource.profile)
            return (FILE_ATTRIBUTE_DIRECTORY
                    if resource.category is ResourceCategory.FOLDER
                    else FILE_ATTRIBUTE_NORMAL)
        return call.original(path)

    def nt_query_attributes(call: HookCall, path: str):
        resource = file_resource(path)
        if resource is not None:
            report(call, "file", path, profile=resource.profile)
            return (NtStatus.STATUS_SUCCESS, FILE_ATTRIBUTE_NORMAL)
        return call.original(path)

    def create_file(call: HookCall, path: str, write: bool = False):
        device = db.lookup_device(path) if path.startswith("\\\\.\\") else None
        if e.decide(device) and cfg.enable_software:
            report(call, "device", path, profile=device.profile)
            return call.machine.handles.open({"device": path, "fake": True},
                                             "device")
        resource = file_resource(path)
        if resource is not None and not write:
            report(call, "file", path, profile=resource.profile)
            return call.machine.handles.open(
                {"path": path, "write": False, "fake": True}, "file")
        return call.original(path, write)

    def nt_create_file(call: HookCall, path: str, write: bool = False):
        device = db.lookup_device(path) if path.startswith("\\\\.\\") else None
        if e.decide(device) and cfg.enable_software:
            report(call, "device", path, profile=device.profile)
            return (NtStatus.STATUS_SUCCESS,
                    call.machine.handles.open({"device": path, "fake": True},
                                              "device"))
        resource = file_resource(path)
        if resource is not None and not write:
            report(call, "file", path, profile=resource.profile)
            return (NtStatus.STATUS_SUCCESS,
                    call.machine.handles.open(
                        {"path": path, "write": False, "fake": True}, "file"))
        return call.original(path, write)

    def find_first_file(call: HookCall, pattern: str):
        result = call.original(pattern)
        if result is not None or not cfg.enable_software:
            return result
        directory, _, mask = pattern.rpartition("\\")
        for path_l in list(db._files):
            if not path_l.startswith(directory.lower() + "\\"):
                continue
            name = path_l.rsplit("\\", 1)[-1]
            if fnmatch.fnmatch(name, mask.lower()):
                resource = db._files[path_l]
                if e.decide(resource):
                    report(call, "file", path_l, profile=resource.profile)
                    return db._files[path_l].identity.rsplit("\\", 1)[-1]
        return None

    handlers["kernel32.dll!GetFileAttributesA"] = get_file_attributes
    handlers["ntdll.dll!NtQueryAttributesFile"] = nt_query_attributes
    handlers["kernel32.dll!CreateFileA"] = create_file
    handlers["ntdll.dll!NtCreateFile"] = nt_create_file
    handlers["kernel32.dll!FindFirstFileA"] = find_first_file

    # -- system information -------------------------------------------------

    def nt_query_system(call: HookCall, info_class: int):
        if info_class == SystemInformationClass.SystemBasicInformation \
                and cfg.enable_hardware:
            report(call, "hardware", "SystemBasicInformation")
            return (NtStatus.STATUS_SUCCESS,
                    {"number_of_processors": db.hardware.cpu_cores,
                     "physical_pages": db.hardware.ram_total_bytes // 4096})
        if info_class == SystemInformationClass.SystemProcessInformation \
                and cfg.enable_software:
            status, listing = call.original(info_class)
            if listing is not None:
                extra = [{"pid": _FAKE_PID_BASE + i, "name": name, "ppid": 4}
                         for i, name in enumerate(db.deceptive_process_names())
                         if not any(p["name"].lower() == name.lower()
                                    for p in listing)]
                listing = listing + extra
                report(call, "process", "SystemProcessInformation",
                       injected=len(extra))
            return (status, listing)
        if info_class == SystemInformationClass.SystemKernelDebuggerInformation \
                and cfg.enable_debugger:
            report(call, "debugger", "SystemKernelDebuggerInformation")
            return (NtStatus.STATUS_SUCCESS,
                    {"debugger_enabled": True, "debugger_not_present": False})
        if info_class == SystemInformationClass.SystemRegistryQuotaInformation \
                and cfg.enable_weartear:
            report(call, "weartear", "SystemRegistryQuotaInformation",
                   used=db.weartear.regsize_bytes)
            return (NtStatus.STATUS_SUCCESS,
                    {"registry_quota_allowed": 0x20000000,
                     "registry_quota_used": db.weartear.regsize_bytes})
        return call.original(info_class)

    def nt_query_process(call: HookCall, info_class: int,
                         pid: Optional[int] = None):
        if not cfg.enable_debugger:
            return call.original(info_class, pid)
        if info_class == ProcessInformationClass.ProcessDebugPort:
            report(call, "debugger", "ProcessDebugPort")
            return (NtStatus.STATUS_SUCCESS, 0xFFFFFFFF)
        if info_class == ProcessInformationClass.ProcessDebugFlags:
            report(call, "debugger", "ProcessDebugFlags")
            return (NtStatus.STATUS_SUCCESS, 0)
        if info_class == ProcessInformationClass.ProcessDebugObjectHandle:
            report(call, "debugger", "ProcessDebugObjectHandle")
            return (NtStatus.STATUS_SUCCESS, 0x1234)
        return call.original(info_class, pid)

    def global_memory_status(call: HookCall):
        if not cfg.enable_hardware:
            return call.original()
        report(call, "hardware", "GlobalMemoryStatusEx",
               total=db.hardware.ram_total_bytes)
        return MemoryStatusEx(total_phys=db.hardware.ram_total_bytes,
                              avail_phys=db.hardware.ram_available_bytes)

    def get_system_info(call: HookCall):
        if not cfg.enable_hardware:
            return call.original()
        report(call, "hardware", "GetSystemInfo", cores=db.hardware.cpu_cores)
        return SystemInfo(number_of_processors=db.hardware.cpu_cores)

    def get_disk_free_space(call: HookCall, root: str = "C:\\"):
        if not cfg.enable_hardware:
            return call.original(root)
        report(call, "hardware", "GetDiskFreeSpaceExA",
               total=db.hardware.disk_total_bytes)
        return (True, db.hardware.disk_free_bytes,
                db.hardware.disk_total_bytes)

    def device_io_control(call: HookCall, device: str, ioctl: int):
        from ..winapi.kernel32 import IOCTL_DISK_GET_DRIVE_GEOMETRY
        if ioctl == IOCTL_DISK_GET_DRIVE_GEOMETRY and cfg.enable_hardware:
            report(call, "hardware", "DriveGeometry",
                   total=db.hardware.disk_total_bytes)
            bytes_per_sector, sectors, tracks = 512, 63, 255
            cylinder_bytes = bytes_per_sector * sectors * tracks
            return {"cylinders": db.hardware.disk_total_bytes // cylinder_bytes,
                    "tracks_per_cylinder": tracks,
                    "sectors_per_track": sectors,
                    "bytes_per_sector": bytes_per_sector}
        return call.original(device, ioctl)

    handlers["ntdll.dll!NtQuerySystemInformation"] = nt_query_system
    handlers["ntdll.dll!NtQueryInformationProcess"] = nt_query_process
    handlers["kernel32.dll!GlobalMemoryStatusEx"] = global_memory_status
    handlers["kernel32.dll!GetSystemInfo"] = get_system_info
    handlers["kernel32.dll!GetDiskFreeSpaceExA"] = get_disk_free_space
    handlers["kernel32.dll!DeviceIoControl"] = device_io_control

    # -- modules / debugger --------------------------------------------------

    def get_module_handle(call: HookCall, name: Optional[str]):
        if name is not None and cfg.enable_software:
            resource = db.lookup_library(name)
            if e.decide(resource):
                report(call, "library", name, profile=resource.profile)
                return _fake_module_handle(name)
        return call.original(name)

    def load_library(call: HookCall, name: str):
        if cfg.enable_software:
            resource = db.lookup_library(name)
            if e.decide(resource):
                report(call, "library", name, profile=resource.profile)
                return _fake_module_handle(name)
        return call.original(name)

    def get_proc_address(call: HookCall, module_base: int, proc_name: str):
        if proc_name == "wine_get_unix_file_name" and cfg.enable_software \
                and e.profiles.is_active("wine"):
            report(call, "library", proc_name, profile="wine")
            return _FAKE_MODULE_BASE + 0x9999
        return call.original(module_base, proc_name)

    def is_debugger_present(call: HookCall):
        if not cfg.enable_debugger:
            return call.original()
        report(call, "debugger", "IsDebuggerPresent")
        return True

    def check_remote_debugger(call: HookCall, pid: Optional[int] = None):
        if not cfg.enable_debugger:
            return call.original(pid)
        report(call, "debugger", "CheckRemoteDebuggerPresent")
        return True

    handlers["kernel32.dll!GetModuleHandleA"] = get_module_handle
    handlers["kernel32.dll!LoadLibraryA"] = load_library
    handlers["kernel32.dll!GetProcAddress"] = get_proc_address
    handlers["kernel32.dll!IsDebuggerPresent"] = is_debugger_present
    handlers["kernel32.dll!CheckRemoteDebuggerPresent"] = check_remote_debugger

    # -- timing -----------------------------------------------------------------

    def get_tick_count(call: HookCall):
        if not cfg.enable_timing:
            return call.original()
        report(call, "timing", "GetTickCount")
        return e.fake_tick(call.machine, call.process.pid)

    handlers["kernel32.dll!GetTickCount"] = get_tick_count

    # -- identity ---------------------------------------------------------------

    def get_user_name(call: HookCall):
        if cfg.enable_identity and cfg.enable_username:
            report(call, "identity", "GetUserNameA")
            return db.identity.username
        return call.original()

    def get_module_file_name(call: HookCall, module_base=None):
        if module_base is None and cfg.enable_identity:
            real = call.original(None)
            basename = real.rsplit("\\", 1)[-1]
            report(call, "identity", "GetModuleFileNameA")
            return f"{db.identity.sample_directory}\\{basename}"
        return call.original(module_base)

    handlers["advapi32.dll!GetUserNameA"] = get_user_name
    handlers["kernel32.dll!GetModuleFileNameA"] = get_module_file_name

    # -- GUI / process list ------------------------------------------------------

    def find_window(call: HookCall, class_name, title=None):
        if cfg.enable_software:
            resource = db.lookup_window(class_name, title)
            if e.decide(resource):
                report(call, "window", resource.identity,
                       profile=resource.profile)
                return _FAKE_WINDOW_HWND
        return call.original(class_name, title)

    def toolhelp_snapshot(call: HookCall):
        handle = call.original()
        snapshot = call.machine.handles.resolve(handle, "toolhelp")
        if snapshot is not None and cfg.enable_software:
            present = {name.lower() for _, name in snapshot["entries"]}
            added = 0
            for index, name in enumerate(db.deceptive_process_names()):
                if name.lower() not in present:
                    snapshot["entries"].append((_FAKE_PID_BASE + index, name))
                    added += 1
            report(call, "process", "CreateToolhelp32Snapshot", injected=added)
        return handle

    handlers["user32.dll!FindWindowA"] = find_window
    handlers["kernel32.dll!CreateToolhelp32Snapshot"] = toolhelp_snapshot

    # -- auxiliary: network sinkhole (Section II-B network resources) ------------

    def dns_resolve(call: HookCall, name: str):
        answer = call.original(name)
        if answer is None and cfg.enable_network:
            report(call, "network", name, nx=True)
            call.machine.network.mark_reachable(db.network.sinkhole_ip)
            return db.network.sinkhole_ip
        return answer

    def internet_open_url(call: HookCall, url: str):
        host = url.split("//", 1)[-1].split("/", 1)[0]
        if cfg.enable_network and not call.machine.network.domain_exists(host):
            report(call, "network", host, nx=True, http=True)
            return True  # the Scarecrow proxy answers for sinkholed names
        return call.original(url)

    handlers["dnsapi.dll!DnsQuery_A"] = dns_resolve
    handlers["ws2_32.dll!gethostbyname"] = dns_resolve
    handlers["wininet.dll!InternetOpenUrlA"] = internet_open_url
    handlers["wininet.dll!InternetCheckConnectionA"] = internet_open_url

    # -- auxiliary: exception-processing timing (Section II-B(g)) -----------------

    def raise_exception(call: HookCall, code: int = 0xE06D7363):
        """Inject the analysis-like dispatch delay before the real path.

        "SCARECROW introduces deceptive timing discrepancies in default
        exception processing with minimal to no impact on benign
        applications" — benign software raises exceptions rarely and never
        times them; evasive timing probes read the inflated cost.
        """
        if cfg.enable_timing:
            profile = call.machine.clock.profile
            call.machine.clock.advance_ns(
                profile.debugged_exception_dispatch_ns)
            report(call, "timing", "RaiseException", code=code)
        return call.original(code)

    handlers["kernel32.dll!RaiseException"] = raise_exception

    # -- auxiliary: analysis-product mutexes --------------------------------------

    def open_mutex(call: HookCall, name: str):
        if cfg.enable_software:
            resource = db.lookup_mutex(name)
            if e.decide(resource):
                report(call, "mutex", name, profile=resource.profile)
                return call.machine.handles.open(
                    {"mutex": name, "fake": True}, "mutex")
        return call.original(name)

    handlers["kernel32.dll!OpenMutexA"] = open_mutex

    # -- auxiliary: wear-and-tear (Table III) -------------------------------------

    def dns_cache_table(call: HookCall):
        if not cfg.enable_weartear:
            return call.original()
        table = call.original()
        limit = db.weartear.dnscache_entries
        report(call, "weartear", "DnsGetCacheDataTable", limit=limit)
        return table[-limit:] if limit else []

    def evt_query(call: HookCall, channel: str = "System"):
        if not cfg.enable_weartear:
            return call.original(channel)
        count = db.weartear.sysevt_count
        sources = [f"Service Control Manager",
                   "Microsoft-Windows-Kernel-General",
                   "Microsoft-Windows-WindowsUpdateClient", "EventLog",
                   "Microsoft-Windows-Kernel-Power", "Tcpip"][
                       :db.weartear.sysevt_sources]
        records = [EventRecord(i + 1, sources[i % len(sources)],
                               1000 + i % 97, i * 60_000)
                   for i in range(count)]
        report(call, "weartear", "EvtQuery", count=count,
               sources=len(sources))
        return call.machine.handles.open({"records": records, "index": 0},
                                         "event_query")

    handlers["dnsapi.dll!DnsGetCacheDataTable"] = dns_cache_table
    handlers["wevtapi.dll!EvtQuery"] = evt_query

    # -- wide-character variants share their narrow handlers ----------------
    # (an unhooked W export would be a clean bypass of the deception).

    for alias, base in W_VARIANT_ALIASES.items():
        handlers[alias] = handlers[base]

    # -- auxiliary: decoys (hooked to be *seen*, never to change behaviour) ------

    if cfg.enable_decoy_hooks:
        for export in DECOY_APIS:
            handlers[export] = passthrough

    return handlers
