"""Self-spawn-loop policy (Sections IV-C.1 and VI-C).

Deactivated malware frequently enters an everlasting respawn loop (check
``IsDebuggerPresent`` → spawn self → repeat). Scarecrow "currently only
record[s] such self-spawning loop behavior and raise[s] an alarm without any
interruptions; however, we can easily stop those samples" — both behaviours
are implemented: passive alarm by default, active mitigation opt-in.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional

from ..winsim.machine import Machine
from ..winsim.process import Process

#: Spawn count of the same image within one run that constitutes a loop.
DEFAULT_LOOP_THRESHOLD = 10


@dataclasses.dataclass(frozen=True)
class SpawnLoopAlarm:
    image_name: str
    spawn_count: int
    mitigated: bool


class SpawnLoopPolicy:
    """Watches spawns inside a protected process tree."""

    def __init__(self, threshold: int = DEFAULT_LOOP_THRESHOLD,
                 active_mitigation: bool = False) -> None:
        self.threshold = threshold
        self.active_mitigation = active_mitigation
        self._spawn_counts: Counter = Counter()
        self.alarms: List[SpawnLoopAlarm] = []
        self._alarmed: set = set()

    def observe_spawn(self, machine: Machine,
                      child: Process) -> Optional[SpawnLoopAlarm]:
        """Record a spawn; returns an alarm when a loop is detected.

        A "self-spawn" is a child whose image name matches an ancestor's —
        the respawn pattern the paper counts (474 ``CreateProcessW`` calls
        in a minute for sample ``0827287d``).
        """
        name = child.name.lower()
        is_self_spawn = any(anc.name.lower() == name
                            for anc in child.ancestors())
        if not is_self_spawn:
            return None
        self._spawn_counts[name] += 1
        count = self._spawn_counts[name]
        if count < self.threshold or name in self._alarmed:
            return None
        self._alarmed.add(name)
        mitigated = False
        if self.active_mitigation:
            mitigated = self._mitigate(machine, child)
        alarm = SpawnLoopAlarm(child.name, count, mitigated)
        self.alarms.append(alarm)
        return alarm

    def _mitigate(self, machine: Machine, child: Process) -> bool:
        """Kill the loop by terminating the spawning lineage (Section VI-C)."""
        killed = False
        for process in [child] + list(child.ancestors()):
            if process.name.lower() == child.name.lower() and process.alive:
                machine.processes.terminate(process.pid, exit_code=137)
                killed = True
        return killed

    def spawn_count(self, image_name: str) -> int:
        return self._spawn_counts[image_name.lower()]

    def is_looping(self, image_name: str) -> bool:
        return self._spawn_counts[image_name.lower()] >= self.threshold

    def counts(self) -> Dict[str, int]:
        return dict(self._spawn_counts)

    def reset(self) -> None:
        self._spawn_counts.clear()
        self.alarms.clear()
        self._alarmed.clear()
