"""Deception profiles and the conflict-masking manager (Section VI-B).

Scarecrow blends resources imitating *many* environments at once (VMware +
VirtualBox + Sandboxie + debuggers...), which maximizes coverage but is
itself detectable: no real machine is simultaneously a VMware and a
VirtualBox guest. The paper sketches the countermeasure as future work:
keep per-sandbox profiles, and once malware trips a resource belonging to
one profile, immediately mask every *conflicting* profile. We implement it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

#: Profile labels whose coexistence is physically impossible — a machine is
#: at most one of these at a time.
VM_PROFILES = frozenset({"vbox", "vmware", "qemu", "bochs", "wine"})

#: Profiles that can coexist with anything (tools installed side by side).
COMPATIBLE_PROFILES = frozenset({"debugger", "forensic", "sandboxie",
                                 "cuckoo", "sandbox-generic"})

ALL_PROFILES = VM_PROFILES | COMPATIBLE_PROFILES


@dataclasses.dataclass
class ScarecrowConfig:
    """Deployment configuration of the deception engine.

    Every deception group maps to a claim in the paper; all default on
    except the ones the paper itself ships off by default (wear-and-tear is
    the Section IV-C.2 *extension*; exclusive profiles are Section VI-B
    future work).
    """

    enable_software: bool = True     # files/processes/DLLs/windows/registry
    enable_hardware: bool = True     # disk/RAM/cores fakes
    enable_network: bool = True      # NX-domain sinkhole
    enable_debugger: bool = True     # IsDebuggerPresent & friends
    enable_timing: bool = True       # fake low-uptime accelerated ticks
    enable_identity: bool = True     # username / module-path deception
    enable_username: bool = True     # separately togglable (end-user deployments)
    enable_decoy_hooks: bool = True  # visibly hook APIs sandboxes hook
    enable_weartear: bool = False    # Table III extension
    exclusive_profiles: bool = False  # Section VI-B conflict masking
    #: Profiles active at start; ``None`` means all known profiles.
    profiles: Optional[Set[str]] = None

    def active_profiles(self) -> Set[str]:
        return set(self.profiles) if self.profiles is not None \
            else set(ALL_PROFILES)


class ProfileManager:
    """Tracks which imitation profiles are currently active."""

    def __init__(self, config: ScarecrowConfig) -> None:
        self.config = config
        self._active: Set[str] = config.active_profiles()
        self._committed_vm: Optional[str] = None
        self.mask_log: List[str] = []

    @property
    def active(self) -> Set[str]:
        return set(self._active)

    def is_active(self, profile: str) -> bool:
        return profile in self._active

    def observe_probe(self, profile: str) -> None:
        """Malware just probed a resource of ``profile``.

        Under ``exclusive_profiles``, the first probed VM profile becomes
        the committed identity and all conflicting VM profiles are masked,
        so later cross-vendor consistency checks find a single coherent VM.
        """
        if not self.config.exclusive_profiles:
            return
        if profile not in VM_PROFILES or self._committed_vm is not None:
            return
        self._committed_vm = profile
        for other in VM_PROFILES - {profile}:
            if other in self._active:
                self._active.discard(other)
                self.mask_log.append(other)

    @property
    def committed_vm(self) -> Optional[str]:
        return self._committed_vm

    def reset(self) -> None:
        self._active = self.config.active_profiles()
        self._committed_vm = None
        self.mask_log.clear()
