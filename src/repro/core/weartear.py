"""Wear-and-tear deception — the Table III extension (Section IV-C.2).

Miramirkhani et al. fingerprint *real* machines by their accumulated usage
("aging"). Scarecrow extends the deception database with sandbox-typical
values for the top-5 artifacts plus the entire registry category, so an
aged end-user machine reports the statistics of a pristine sandbox.

This module carries the declarative Table III itself (artifact → faked
resource → associated APIs) and the helper that switches the extension on.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from .controller import ScarecrowController
from .database import WearTearProfile


@dataclasses.dataclass(frozen=True)
class WearTearRow:
    """One row of Table III."""

    category: str
    artifact: str
    faked_resource: str
    associated_apis: Tuple[str, ...]


#: Table III, verbatim structure.
TABLE3_ROWS: Tuple[WearTearRow, ...] = (
    WearTearRow("Top 5", "dnscacheEntries", "Recent 4 entries",
                ("DnsGetCacheDataTable()",)),
    WearTearRow("Top 5", "sysevt", "Recent 8K system events", ("EvtNext()",)),
    WearTearRow("Top 5", "syssrc", "Number of sources in recent 8k events",
                ("EvtNext()",)),
    WearTearRow("Top 5", "deviceClsCount",
                "System\\CurrentControlSet\\Control\\DeviceClasses "
                "(29 subkeys)", ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Top 5", "autoRunCount",
                "Software\\Microsoft\\Windows\\CurrentVersion\\Run "
                "(3 value entries)", ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "regSize",
                "SystemRegistryQuotaInformation 53M (bytes)",
                ("NtQuerySystemInformation()",)),
    WearTearRow("Registry related", "uninstallCount",
                "Software\\Microsoft\\Windows\\CurrentVersion\\Uninstall",
                ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "totalSharedDlls",
                "Software\\Microsoft\\Windows\\CurrentVersion\\SharedDlls",
                ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "totalAppPaths",
                "Software\\Microsoft\\Windows\\CurrentVersion\\AppPath",
                ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "totalActiveSetup",
                "Software\\Microsoft\\ActiveSetup\\InstalledComponents",
                ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "totalMissingDlls",
                "Software\\Microsoft\\Windows\\CurrentVersion\\SharedDlls",
                ("NtOpenKeyEx()", "NtQueryKey()", "NtCreateFile()")),
    WearTearRow("Registry related", "usrassistCount",
                "Software\\Microsoft\\Windows\\CurrentVersion\\Explorer\\"
                "UserAssist", ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "shimCacheCount",
                "SYSTEM\\CurrentControlSet\\Control\\SessionManager\\"
                "AppCompatCache", ("NtOpenKeyEx()", "NtQueryValueKey()")),
    WearTearRow("Registry related", "MUICacheEntries",
                "Software\\Classes\\LocalSettings\\Software\\Microsoft\\"
                "Windows\\Shell\\Muicache", ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "FireruleCount()",
                "SYSTEM\\ControlSet001\\services\\SharedAccess\\Parameters\\"
                "FirewallPolicy\\FirewallRules",
                ("NtOpenKeyEx()", "NtQueryKey()")),
    WearTearRow("Registry related", "USBStorCount",
                "SYSTEM\\CurrentControlSet\\Services\\UsbStor",
                ("NtOpenKeyEx()", "NtQueryKey()")),
)


def faked_artifact_names() -> List[str]:
    return [row.artifact for row in TABLE3_ROWS]


def enable_weartear(controller: ScarecrowController,
                    profile: WearTearProfile = None) -> None:
    """Switch the wear-and-tear extension on for a running controller."""
    if profile is not None:
        controller.engine.db.weartear = profile
    controller.push_config_update(enable_weartear=True)
