"""The deception database: every resource Scarecrow can fake.

Two populations, per Section II-C:

* **Curated** resources, manually extracted from the anti-analysis
  literature — VM driver files, guest-addition registry keys, analysis-tool
  processes/windows/DLLs, sandbox-like hardware values, the NX-domain
  sinkhole.
* **Crawled** resources, collected by running the crawler inside public
  sandboxes (:mod:`repro.core.collector`) and diffing against a clean
  baseline — the paper lands on 17,540 files, 24 processes and 1,457
  registry entries.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Dict, Iterable, List, Optional, Tuple

from ..winsim.types import GIB, MIB
from .resources import (DeceptiveResource, Origin, ResourceCategory,
                        registry_value_identity)

# ---------------------------------------------------------------------------
# Curated resource tables
# ---------------------------------------------------------------------------

#: VM / analysis-tool driver and support files (full paths).
CURATED_FILES: Tuple[Tuple[str, str], ...] = (
    # VMware Tools drivers
    ("C:\\Windows\\System32\\drivers\\vmmouse.sys", "vmware"),
    ("C:\\Windows\\System32\\drivers\\vmhgfs.sys", "vmware"),
    ("C:\\Windows\\System32\\drivers\\vm3dmp.sys", "vmware"),
    ("C:\\Windows\\System32\\drivers\\vmci.sys", "vmware"),
    ("C:\\Windows\\System32\\drivers\\vmmemctl.sys", "vmware"),
    ("C:\\Windows\\System32\\drivers\\vmrawdsk.sys", "vmware"),
    ("C:\\Windows\\System32\\drivers\\vmusbmouse.sys", "vmware"),
    ("C:\\Windows\\System32\\vm3dgl.dll", "vmware"),
    ("C:\\Windows\\System32\\vmdum.dll", "vmware"),
    ("C:\\Windows\\System32\\vmGuestLib.dll", "vmware"),
    ("C:\\Program Files\\VMware\\VMware Tools\\vmtoolsd.exe", "vmware"),
    # VirtualBox Guest Additions
    ("C:\\Windows\\System32\\drivers\\VBoxMouse.sys", "vbox"),
    ("C:\\Windows\\System32\\drivers\\VBoxGuest.sys", "vbox"),
    ("C:\\Windows\\System32\\drivers\\VBoxSF.sys", "vbox"),
    ("C:\\Windows\\System32\\drivers\\VBoxVideo.sys", "vbox"),
    ("C:\\Windows\\System32\\vboxdisp.dll", "vbox"),
    ("C:\\Windows\\System32\\vboxhook.dll", "vbox"),
    ("C:\\Windows\\System32\\vboxogl.dll", "vbox"),
    ("C:\\Windows\\System32\\vboxservice.exe", "vbox"),
    ("C:\\Windows\\System32\\vboxtray.exe", "vbox"),
    ("C:\\Program Files\\Oracle\\VirtualBox Guest Additions\\uninst.exe", "vbox"),
    # Analysis / forensic tool installs
    ("C:\\Tools\\ollydbg\\OLLYDBG.EXE", "debugger"),
    ("C:\\Tools\\ida\\idaq.exe", "debugger"),
    ("C:\\Program Files\\Wireshark\\wireshark.exe", "forensic"),
    ("C:\\Program Files\\Fiddler2\\Fiddler.exe", "forensic"),
    ("C:\\analysis\\sandbox-starter.exe", "sandbox-generic"),
    ("C:\\sample\\sample.exe", "sandbox-generic"),
)

#: Folders whose presence marks analysis installs.
CURATED_FOLDERS: Tuple[Tuple[str, str], ...] = (
    ("C:\\Program Files\\VMware\\VMware Tools", "vmware"),
    ("C:\\Program Files\\Oracle\\VirtualBox Guest Additions", "vbox"),
    ("C:\\Tools\\ollydbg", "debugger"),
    ("C:\\sandbox", "sandbox-generic"),
    ("C:\\analysis", "sandbox-generic"),
    ("C:\\cuckoo", "cuckoo"),
)

#: The 24 analysis / VM processes Scarecrow advertises *and protects from
#: termination by untrusted software* (Section II-B(b)). Names follow the
#: paper where it spells them (``olydbg.exe``, ``idap.exe``, ``PETools.exe``).
PROTECTED_PROCESSES: Tuple[Tuple[str, str], ...] = (
    ("olydbg.exe", "debugger"),
    ("idap.exe", "debugger"),
    ("PETools.exe", "debugger"),
    ("windbg.exe", "debugger"),
    ("x32dbg.exe", "debugger"),
    ("ImmunityDebugger.exe", "debugger"),
    ("ProcessHacker.exe", "forensic"),
    ("procmon.exe", "forensic"),
    ("procexp.exe", "forensic"),
    ("regmon.exe", "forensic"),
    ("filemon.exe", "forensic"),
    ("autoruns.exe", "forensic"),
    ("tcpview.exe", "forensic"),
    ("wireshark.exe", "forensic"),
    ("dumpcap.exe", "forensic"),
    ("fiddler.exe", "forensic"),
    ("VBoxService.exe", "vbox"),
    ("VBoxTray.exe", "vbox"),
    ("vmtoolsd.exe", "vmware"),
    ("vmwaretray.exe", "vmware"),
    ("vmwareuser.exe", "vmware"),
    ("SbieSvc.exe", "sandboxie"),
    ("joeboxserver.exe", "sandbox-generic"),
    ("joeboxcontrol.exe", "sandbox-generic"),
)

#: The 15 unique analysis DLLs (Section II-B(c)).
ANALYSIS_DLLS: Tuple[Tuple[str, str], ...] = (
    ("SbieDll.dll", "sandboxie"),
    ("snxhk.dll", "sandbox-generic"),       # Avast sandbox
    ("sxIn.dll", "sandbox-generic"),        # 360 sandbox
    ("Sf2.dll", "sandbox-generic"),         # Avast
    ("cmdvrt32.dll", "sandbox-generic"),    # Comodo
    ("cmdvrt64.dll", "sandbox-generic"),
    ("wpespy.dll", "forensic"),             # WPE Pro
    ("pstorec.dll", "sandbox-generic"),     # SunBelt
    ("vmcheck.dll", "sandbox-generic"),     # Virtual PC
    ("api_log.dll", "sandbox-generic"),     # iDefense
    ("dir_watch.dll", "sandbox-generic"),   # iDefense
    ("dbghelp.dll", "debugger"),
    ("avghookx.dll", "forensic"),           # AVG hook
    ("avghooka.dll", "forensic"),
    ("VBoxHook.dll", "vbox"),
)

#: 6 debugger GUI windows + 4 sandbox-related windows (Section II-B(d)).
DEBUGGER_WINDOWS: Tuple[Tuple[str, Optional[str], str], ...] = (
    ("OLLYDBG", None, "debugger"),
    ("WinDbgFrameClass", None, "debugger"),
    ("ID", "Immunity Debugger", "debugger"),
    ("Zeta Debugger", None, "debugger"),
    ("Rock Debugger", None, "debugger"),
    ("ObsidianGUI", None, "debugger"),
)
SANDBOX_WINDOWS: Tuple[Tuple[str, Optional[str], str], ...] = (
    ("SandboxieControlWndClass", None, "sandboxie"),
    ("CuckooAnalyzer", None, "cuckoo"),
    ("JoeSandboxWnd", None, "sandbox-generic"),
    ("VBoxTrayToolWndClass", None, "vbox"),
)

#: Deceptive registry keys (existence is the signal).
CURATED_REGISTRY_KEYS: Tuple[Tuple[str, str], ...] = (
    ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\VirtualBox Guest Additions", "vbox"),
    ("HKEY_LOCAL_MACHINE\\SOFTWARE\\VMware, Inc.\\VMware Tools", "vmware"),
    ("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Services\\VBoxGuest", "vbox"),
    ("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Services\\VBoxService", "vbox"),
    ("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Services\\VBoxSF", "vbox"),
    ("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Services\\vmci", "vmware"),
    ("HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Enum\\IDE\\DiskVBOX_HARDDISK", "vbox"),
    ("HKEY_LOCAL_MACHINE\\HARDWARE\\ACPI\\DSDT\\VBOX__", "vbox"),
    ("HKEY_LOCAL_MACHINE\\HARDWARE\\ACPI\\FADT\\VBOX__", "vbox"),
    ("HKEY_LOCAL_MACHINE\\HARDWARE\\ACPI\\RSDT\\VBOX__", "vbox"),
    ("HKEY_CURRENT_USER\\Software\\Wine", "wine"),
    ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Uninstall\\Sandboxie", "sandboxie"),
    ("HKEY_LOCAL_MACHINE\\SOFTWARE\\OllyDbg", "debugger"),
)

#: Deceptive registry values (``key::value`` -> data). The BIOS strings
#: combine multiple VM vendor names (Section II-B(e): "fakes such
#: configuration values by combining multiple virtual machine names").
COMBINED_BIOS_VERSION = "VBOX QEMU BOCHS - 1"
CURATED_REGISTRY_VALUES: Tuple[Tuple[str, str, object, str], ...] = (
    ("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
     "SystemBiosVersion", COMBINED_BIOS_VERSION, "vbox"),
    ("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
     "VideoBiosVersion", "VIRTUALBOX VGA BIOS", "vbox"),
    ("HKEY_LOCAL_MACHINE\\HARDWARE\\Description\\System",
     "SystemBiosDate", "06/23/99", "vbox"),
    ("HKEY_LOCAL_MACHINE\\SOFTWARE\\VMware, Inc.\\VMware Tools",
     "InstallPath", "C:\\Program Files\\VMware\\VMware Tools\\", "vmware"),
    ("HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\VirtualBox Guest Additions",
     "Version", "5.2.8", "vbox"),
    ("HKEY_LOCAL_MACHINE\\HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\"
     "Scsi Bus 0\\Target Id 0\\Logical Unit Id 0",
     "Identifier", "VBOX HARDDISK", "vbox"),
)

#: Devices faked through the CreateFile/NtCreateFile hooks.
CURATED_DEVICES: Tuple[Tuple[str, str], ...] = (
    ("\\\\.\\vmci", "vmware"),
    ("\\\\.\\VBoxGuest", "vbox"),
    ("\\\\.\\VBoxMiniRdrDN", "vbox"),
)

#: Well-known analysis-product mutexes faked through the OpenMutex hook.
CURATED_MUTEXES: Tuple[Tuple[str, str], ...] = (
    ("Sandboxie_SingleInstanceMutex_Control", "sandboxie"),
    ("Frz_State", "sandbox-generic"),           # Deep Freeze
    ("MutexNPA_UN", "sandbox-generic"),         # Norman sandbox
)


@dataclasses.dataclass
class FakeHardwareProfile:
    """Sandbox-like hardware answers (Section II-B, hardware resources).

    "SCARECROW provides faked system configurations, such as disk size
    (50GB), memory size (1GB), and the number of cores (1)." RAM is just
    under 1 GiB, as a 1 GB guest reports after firmware reservations —
    which is also what the <1 GiB sandbox heuristics key on.
    """

    disk_total_bytes: int = 50 * GIB
    disk_free_bytes: int = 26 * GIB
    ram_total_bytes: int = 1 * GIB - 64 * MIB
    ram_available_bytes: int = 512 * MIB
    cpu_cores: int = 1


@dataclasses.dataclass
class FakeIdentityProfile:
    """Identity answers for the generic-sandbox checks."""

    username: str = "currentuser"
    sample_directory: str = "C:\\sample"
    fake_uptime_base_ms: int = 3 * 60 * 1000  # sandboxes run minutes, not days
    #: Fake tick timeline advances at this rate relative to real time; a
    #: rate < 1 makes Sleep() appear fast-forwarded (sandbox-like).
    tick_rate: float = 0.5


@dataclasses.dataclass
class FakeNetworkProfile:
    """NX-domain sinkhole configuration (Section II-B, network resources)."""

    sinkhole_ip: str = "192.0.2.66"


@dataclasses.dataclass
class WearTearProfile:
    """Faked wear-and-tear artifact values (Table III).

    Values follow the table: 4 recent DNS cache entries, 8K system events,
    29 DeviceClasses subkeys, 3 autorun entries, 53 MB registry quota use.
    The remaining registry-category counts are sandbox-typical statistics
    from the wear-and-tear paper's sandbox measurements.
    """

    dnscache_entries: int = 4
    sysevt_count: int = 8000
    sysevt_sources: int = 6
    device_cls_count: int = 29
    autorun_count: int = 3
    regsize_bytes: int = 53 * 1024 * 1024
    uninstall_count: int = 9
    shared_dlls_count: int = 14
    app_paths_count: int = 21
    active_setup_count: int = 12
    missing_dlls_count: int = 2
    userassist_count: int = 18
    shimcache_count: int = 31
    muicache_entries: int = 8
    firewall_rules_count: int = 27
    usbstor_count: int = 1

    #: Registry keys whose subkey/value cardinality the wear-and-tear
    #: hooks clamp, mapped to (subkey_count_attr, value_count_attr).
    def managed_keys(self) -> Dict[str, Tuple[int, int]]:
        return {
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\DeviceClasses":
                (self.device_cls_count, 0),
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run":
                (0, self.autorun_count),
            "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\CurrentVersion\\Run":
                (0, self.autorun_count),
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Uninstall":
                (self.uninstall_count, 0),
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\SharedDlls":
                (0, self.shared_dlls_count),
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\App Paths":
                (self.app_paths_count, 0),
            "HKEY_LOCAL_MACHINE\\SOFTWARE\\Microsoft\\Active Setup\\Installed Components":
                (self.active_setup_count, 0),
            "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\CurrentVersion\\Explorer\\UserAssist":
                (self.userassist_count, 0),
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Control\\Session Manager\\AppCompatCache":
                (0, self.shimcache_count),
            "HKEY_CURRENT_USER\\Software\\Classes\\Local Settings\\Software\\Microsoft\\Windows\\Shell\\MuiCache":
                (0, self.muicache_entries),
            "HKEY_LOCAL_MACHINE\\SYSTEM\\ControlSet001\\services\\SharedAccess\\Parameters\\FirewallPolicy\\FirewallRules":
                (0, self.firewall_rules_count),
            "HKEY_LOCAL_MACHINE\\SYSTEM\\CurrentControlSet\\Services\\UsbStor":
                (self.usbstor_count, 0),
        }


class FrozenDatabaseError(RuntimeError):
    """Raised when code attempts to mutate a frozen database snapshot."""


@dataclasses.dataclass
class DatabaseSnapshot:
    """Picklable, self-contained copy of a database's state.

    Workers of the parallel sweep engine receive one of these (pickled once
    per pool, through the initializer) and rehydrate their own read-only
    :class:`FrozenDeceptionDatabase` from it — no live objects are shared
    across process boundaries.
    """

    files: Dict[str, DeceptiveResource]
    basenames: Dict[str, DeceptiveResource]
    folders: Dict[str, DeceptiveResource]
    processes: Dict[str, DeceptiveResource]
    libraries: Dict[str, DeceptiveResource]
    windows: List[DeceptiveResource]
    registry_keys: Dict[str, DeceptiveResource]
    registry_values: Dict[Tuple[str, str], DeceptiveResource]
    devices: Dict[str, DeceptiveResource]
    mutexes: Dict[str, DeceptiveResource]
    hardware: FakeHardwareProfile
    identity: FakeIdentityProfile
    network: FakeNetworkProfile
    weartear: WearTearProfile


class DeceptionDatabase:
    """All deceptive resources, indexed for the hook handlers."""

    #: Mutation counter backing the :meth:`snapshot_bytes` memo; bumped by
    #: every ``add_*`` call (class attribute so ``__new__``-constructed
    #: instances start consistent).
    _version: int = 0
    #: ``(cache_key, blob)`` of the last :meth:`snapshot_bytes` result.
    _snapshot_blob_cache: Optional[Tuple[tuple, bytes]] = None

    def __init__(self) -> None:
        self._files: Dict[str, DeceptiveResource] = {}
        self._basenames: Dict[str, DeceptiveResource] = {}
        self._folders: Dict[str, DeceptiveResource] = {}
        self._processes: Dict[str, DeceptiveResource] = {}
        self._libraries: Dict[str, DeceptiveResource] = {}
        self._windows: List[DeceptiveResource] = []
        self._registry_keys: Dict[str, DeceptiveResource] = {}
        self._registry_values: Dict[Tuple[str, str], DeceptiveResource] = {}
        self._devices: Dict[str, DeceptiveResource] = {}
        self._mutexes: Dict[str, DeceptiveResource] = {}
        self.hardware = FakeHardwareProfile()
        self.identity = FakeIdentityProfile()
        self.network = FakeNetworkProfile()
        self.weartear = WearTearProfile()
        self._load_curated()

    # -- population ---------------------------------------------------------

    def _load_curated(self) -> None:
        for path, profile in CURATED_FILES:
            self.add_file(path, profile)
        for path, profile in CURATED_FOLDERS:
            self.add_folder(path, profile)
        for name, profile in PROTECTED_PROCESSES:
            self.add_process(name, profile, protected=True)
        for name, profile in ANALYSIS_DLLS:
            self.add_library(name, profile)
        for class_name, title, profile in DEBUGGER_WINDOWS + SANDBOX_WINDOWS:
            self.add_window(class_name, title, profile)
        for path, profile in CURATED_REGISTRY_KEYS:
            self.add_registry_key(path, profile)
        for path, name, data, profile in CURATED_REGISTRY_VALUES:
            self.add_registry_value(path, name, data, profile)
        for name, profile in CURATED_DEVICES:
            self.add_device(name, profile)
        for name, profile in CURATED_MUTEXES:
            self.add_mutex(name, profile)

    def add_file(self, path: str, profile: str,
                 origin: Origin = Origin.CURATED) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.FILE, path, profile,
                                     origin=origin)
        self._files[path.lower()] = resource
        self._basenames[path.lower().rsplit("\\", 1)[-1]] = resource
        return resource

    def add_folder(self, path: str, profile: str,
                   origin: Origin = Origin.CURATED) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.FOLDER, path, profile,
                                     origin=origin)
        self._folders[path.lower()] = resource
        return resource

    def add_process(self, name: str, profile: str, protected: bool = False,
                    origin: Origin = Origin.CURATED) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.PROCESS, name, profile,
                                     origin=origin, protected=protected)
        self._processes[name.lower()] = resource
        return resource

    def add_library(self, name: str, profile: str,
                    origin: Origin = Origin.CURATED) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.LIBRARY, name, profile,
                                     origin=origin)
        self._libraries[name.lower()] = resource
        return resource

    def add_window(self, class_name: str, title: Optional[str],
                   profile: str) -> DeceptiveResource:
        identity = f"{class_name}|{title or ''}"
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.WINDOW, identity, profile)
        self._windows.append(resource)
        return resource

    def add_registry_key(self, path: str, profile: str,
                         origin: Origin = Origin.CURATED) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.REGISTRY_KEY, path,
                                     profile, origin=origin)
        self._registry_keys[path.lower()] = resource
        return resource

    def add_registry_value(self, key_path: str, value_name: str, data: object,
                           profile: str,
                           origin: Origin = Origin.CURATED) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(
            ResourceCategory.REGISTRY_VALUE,
            registry_value_identity(key_path, value_name), profile, data=data,
            origin=origin)
        self._registry_values[(key_path.lower(), value_name.lower())] = resource
        return resource

    def add_device(self, name: str, profile: str) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.DEVICE, name, profile)
        self._devices[name.lower().strip("\\").replace(".\\", "")] = resource
        return resource

    def add_mutex(self, name: str, profile: str) -> DeceptiveResource:
        self._version += 1
        resource = DeceptiveResource(ResourceCategory.MUTEX, name, profile)
        self._mutexes[name.lower()] = resource
        return resource

    # -- lookups used by hook handlers -----------------------------------------

    def lookup_file(self, path: str) -> Optional[DeceptiveResource]:
        path_l = path.lower()
        hit = self._files.get(path_l) or self._folders.get(path_l)
        if hit is not None:
            return hit
        return self._basenames.get(path_l.rsplit("\\", 1)[-1])

    def lookup_process(self, name: str) -> Optional[DeceptiveResource]:
        return self._processes.get(name.lower())

    def lookup_library(self, name: str) -> Optional[DeceptiveResource]:
        wanted = name.lower()
        if not wanted.endswith(".dll"):
            wanted += ".dll"
        return self._libraries.get(wanted)

    def lookup_window(self, class_name: Optional[str],
                      title: Optional[str]) -> Optional[DeceptiveResource]:
        for resource in self._windows:
            res_class, _, res_title = resource.identity.partition("|")
            if class_name is not None and res_class.lower() != class_name.lower():
                continue
            if title is not None and res_title.lower() != title.lower():
                continue
            if class_name is None and title is None:
                continue
            return resource
        return None

    def lookup_registry_key(self, path: str) -> Optional[DeceptiveResource]:
        """Exact match, or ancestor-of-a-deceptive-key match.

        Opening ``SOFTWARE\\VMware, Inc.`` must succeed when the database
        fakes ``SOFTWARE\\VMware, Inc.\\VMware Tools`` underneath it.
        """
        path_l = path.lower().rstrip("\\")
        exact = self._registry_keys.get(path_l)
        if exact is not None:
            return exact
        prefix = path_l + "\\"
        for key_l, resource in self._registry_keys.items():
            if key_l.startswith(prefix):
                return resource
        return None

    def lookup_registry_value(self, key_path: str,
                              value_name: str) -> Optional[DeceptiveResource]:
        return self._registry_values.get(
            (key_path.lower(), value_name.lower()))

    def registry_values_for_key(self, key_path: str) -> List[Tuple[str, object]]:
        key_l = key_path.lower()
        return [(identity_key[1], res.data)
                for identity_key, res in self._registry_values.items()
                if identity_key[0] == key_l]

    def registry_subkeys_for_key(self, key_path: str) -> List[str]:
        """Direct deceptive children of ``key_path``."""
        prefix = key_path.lower().rstrip("\\") + "\\"
        children = []
        for key_l, resource in self._registry_keys.items():
            if key_l.startswith(prefix):
                remainder = resource.identity[len(prefix):]
                children.append(remainder.split("\\", 1)[0])
        return sorted(set(children), key=str.lower)

    def lookup_device(self, name: str) -> Optional[DeceptiveResource]:
        from ..winsim.devices import normalize_device_name
        return self._devices.get(normalize_device_name(name))

    def lookup_mutex(self, name: str) -> Optional[DeceptiveResource]:
        from ..winsim.mutexes import MutexNamespace
        return self._mutexes.get(MutexNamespace._normalize(name))

    def protected_process_names(self) -> List[str]:
        return [r.identity for r in self._processes.values() if r.protected]

    def deceptive_process_names(self) -> List[str]:
        return [r.identity for r in self._processes.values()]

    # -- snapshot / freeze (parallel-sweep support) ------------------------------

    def snapshot(self) -> DatabaseSnapshot:
        """A deep, picklable copy of the current state.

        :class:`DeceptiveResource` entries are frozen dataclasses, so the
        copies only need fresh containers and profile records; the snapshot
        shares no mutable structure with this database.
        """
        return DatabaseSnapshot(
            files=dict(self._files),
            basenames=dict(self._basenames),
            folders=dict(self._folders),
            processes=dict(self._processes),
            libraries=dict(self._libraries),
            windows=list(self._windows),
            registry_keys=dict(self._registry_keys),
            registry_values=dict(self._registry_values),
            devices=dict(self._devices),
            mutexes=dict(self._mutexes),
            hardware=dataclasses.replace(self.hardware),
            identity=dataclasses.replace(self.identity),
            network=dataclasses.replace(self.network),
            weartear=dataclasses.replace(self.weartear),
        )

    def snapshot_bytes(self) -> bytes:
        """Pickled :meth:`snapshot`, memoized until the database changes.

        The parallel sweep ships this blob through every pool initializer
        (and deserializes the *same* blob on the serial path), so repeated
        sweeps over one database pay for serialization once. The cache key
        folds the ``add_*`` mutation counter with the profile dataclass
        values, since profile *attribute* writes (``db.hardware.cpu_cores
        = 2``) bypass the counter.
        """
        key = (self._version,
               dataclasses.astuple(self.hardware),
               dataclasses.astuple(self.identity),
               dataclasses.astuple(self.network),
               dataclasses.astuple(self.weartear))
        cached = self._snapshot_blob_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        blob = pickle.dumps(self.snapshot(),
                            protocol=pickle.HIGHEST_PROTOCOL)
        self._snapshot_blob_cache = (key, blob)
        return blob

    @classmethod
    def from_snapshot(cls, state: DatabaseSnapshot) -> "DeceptionDatabase":
        """Rebuild a database from a snapshot (curated load is skipped)."""
        db = cls.__new__(cls)
        db._restore_snapshot(state)
        return db

    def _restore_snapshot(self, state: DatabaseSnapshot) -> None:
        # Restoring replaces every container wholesale, which the add_*
        # mutation counter never sees: a live instance with a warm
        # snapshot_bytes() memo would keep serving the pre-restore blob.
        self._version += 1
        self._snapshot_blob_cache = None
        self._files = dict(state.files)
        self._basenames = dict(state.basenames)
        self._folders = dict(state.folders)
        self._processes = dict(state.processes)
        self._libraries = dict(state.libraries)
        self._windows = list(state.windows)
        self._registry_keys = dict(state.registry_keys)
        self._registry_values = dict(state.registry_values)
        self._devices = dict(state.devices)
        self._mutexes = dict(state.mutexes)
        self.hardware = dataclasses.replace(state.hardware)
        self.identity = dataclasses.replace(state.identity)
        self.network = dataclasses.replace(state.network)
        self.weartear = dataclasses.replace(state.weartear)

    def freeze(self) -> "FrozenDeceptionDatabase":
        """A read-only deep copy; mutators raise :class:`FrozenDatabaseError`."""
        return FrozenDeceptionDatabase.from_snapshot(self.snapshot())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeceptionDatabase):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    __hash__ = None  # mutable container; unhashable like list/dict

    # -- statistics --------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return {
            "files": len(self._files),
            "folders": len(self._folders),
            "processes": len(self._processes),
            "libraries": len(self._libraries),
            "windows": len(self._windows),
            "registry_keys": len(self._registry_keys),
            "registry_values": len(self._registry_values),
            "devices": len(self._devices),
            "mutexes": len(self._mutexes),
        }

    def counts_by_origin(self, origin: Origin) -> Dict[str, int]:
        def count(values: Iterable[DeceptiveResource]) -> int:
            return sum(1 for r in values if r.origin is origin)

        return {
            "files": count(self._files.values()),
            "processes": count(self._processes.values()),
            "registry_entries": count(self._registry_keys.values()) +
            count(self._registry_values.values()),
        }


class FrozenDeceptionDatabase(DeceptionDatabase):
    """A read-only database: lookups work, every mutator raises.

    Sweep workers operate on one of these so that a bug in a hook handler
    (or a hostile sample model) can never silently mutate the corpus-wide
    deception inventory mid-sweep.

    Because the contents can never change, registry lookups run on
    indices precomputed at rehydration time (ancestor-prefix map,
    values-by-key, children-by-prefix) instead of the mutable base class's
    linear scans — sweep workers do these lookups on every
    ``RegOpenKey``/``RegEnumKey`` a sample issues.
    """

    _frozen = False

    def __init__(self) -> None:
        super().__init__()
        self._build_indices()
        self._frozen = True

    @classmethod
    def from_snapshot(cls, state: DatabaseSnapshot
                      ) -> "FrozenDeceptionDatabase":
        db = cls.__new__(cls)
        db._restore_snapshot(state)
        db._build_indices()
        db._frozen = True
        return db

    # -- precomputed registry lookup indices -----------------------------------

    def _build_indices(self) -> None:
        """Precompute what the base class derives by scanning per lookup.

        ``setdefault`` walks resources in insertion order, so the
        ancestor index keeps the *first* matching key per prefix —
        exactly what the base class's linear scan returns.
        """
        ancestors: Dict[str, DeceptiveResource] = {}
        children: Dict[str, set] = {}
        for key_l, resource in self._registry_keys.items():
            parts = key_l.split("\\")
            for depth in range(1, len(parts)):
                prefix = "\\".join(parts[:depth])
                ancestors.setdefault(prefix, resource)
                children.setdefault(prefix, set()).add(
                    resource.identity[len(prefix) + 1:].split("\\", 1)[0])
        values_by_key: Dict[str, List[Tuple[str, object]]] = {}
        for (key_l, value_l), resource in self._registry_values.items():
            values_by_key.setdefault(key_l, []).append(
                (value_l, resource.data))
        self._registry_ancestors = ancestors
        self._registry_children = children
        self._registry_values_by_key = values_by_key

    def lookup_registry_key(self, path: str) -> Optional[DeceptiveResource]:
        path_l = path.lower().rstrip("\\")
        exact = self._registry_keys.get(path_l)
        if exact is not None:
            return exact
        return self._registry_ancestors.get(path_l)

    def registry_values_for_key(self, key_path: str
                                ) -> List[Tuple[str, object]]:
        return list(self._registry_values_by_key.get(key_path.lower(), ()))

    def registry_subkeys_for_key(self, key_path: str) -> List[str]:
        children = self._registry_children.get(
            key_path.lower().rstrip("\\"), set())
        return sorted(set(children), key=str.lower)

    def thaw(self) -> DeceptionDatabase:
        """A mutable deep copy (the inverse of :meth:`freeze`)."""
        return DeceptionDatabase.from_snapshot(self.snapshot())

    def _reject_mutation(self, operation: str) -> None:
        if self._frozen:
            raise FrozenDatabaseError(
                f"cannot {operation} on a frozen deception database; "
                "call .thaw() for a mutable copy")

    def add_file(self, *args, **kwargs):
        self._reject_mutation("add_file")
        return super().add_file(*args, **kwargs)

    def add_folder(self, *args, **kwargs):
        self._reject_mutation("add_folder")
        return super().add_folder(*args, **kwargs)

    def add_process(self, *args, **kwargs):
        self._reject_mutation("add_process")
        return super().add_process(*args, **kwargs)

    def add_library(self, *args, **kwargs):
        self._reject_mutation("add_library")
        return super().add_library(*args, **kwargs)

    def add_window(self, *args, **kwargs):
        self._reject_mutation("add_window")
        return super().add_window(*args, **kwargs)

    def add_registry_key(self, *args, **kwargs):
        self._reject_mutation("add_registry_key")
        return super().add_registry_key(*args, **kwargs)

    def add_registry_value(self, *args, **kwargs):
        self._reject_mutation("add_registry_value")
        return super().add_registry_value(*args, **kwargs)

    def add_device(self, *args, **kwargs):
        self._reject_mutation("add_device")
        return super().add_device(*args, **kwargs)

    def add_mutex(self, *args, **kwargs):
        self._reject_mutation("add_mutex")
        return super().add_mutex(*args, **kwargs)
