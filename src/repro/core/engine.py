"""The deception engine — shared brain behind every Scarecrow hook.

One engine instance serves a whole protected process tree: the injected
DLL's hook handlers consult it on every intercepted call, it decides
whether a deceptive answer applies (category enabled? profile active?),
records the fingerprint event, and forwards it to the controller over IPC.
"""

from __future__ import annotations

from typing import Any, Optional

from ..hooking.ipc import IpcEndpoint
from ..telemetry.metrics import TELEMETRY
from ..winsim.machine import Machine
from ..winsim.registry import RegistryKey
from .database import DeceptionDatabase
from .events import FingerprintEvent, FingerprintLog
from .profiles import ProfileManager, ScarecrowConfig
from .resources import DeceptiveResource

#: Single-vendor BIOS strings served once an exclusive profile commits
#: (the default combined value deliberately names several vendors, which
#: the Section VI-B consistency audit would flag).
VENDOR_BIOS_VALUES = {
    "vbox": "VBOX   - 1",
    "qemu": "QEMU   - 1",
    "bochs": "BOCHS  - 1",
    "vmware": "INTEL  - 6040000 VMware",
}


class DeceptionEngine:
    """Policy + state for answering fingerprint probes deceptively."""

    def __init__(self, database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 ipc: Optional[IpcEndpoint] = None) -> None:
        self.db = database or DeceptionDatabase()
        self.config = config or ScarecrowConfig()
        self.profiles = ProfileManager(self.config)
        self.log = FingerprintLog()
        self.ipc = ipc
        #: Per-process tick bases for the timing deception,
        #: pid -> (real_tick_at_attach, fake_base_ms).
        self._tick_bases: dict = {}

    # -- applicability -----------------------------------------------------

    def applies(self, resource: Optional[DeceptiveResource]) -> bool:
        """Should this resource be faked right now? (pure predicate)"""
        if resource is None:
            return False
        if not self.profiles.is_active(resource.profile):
            return False
        return True

    def decide(self, resource: Optional[DeceptiveResource]) -> bool:
        """Per-call deception decision — :meth:`applies` plus telemetry.

        The hook handlers route every decision through here so the
        telemetry layer can count how often Scarecrow answered deceptively
        versus fell through to the genuine implementation.
        """
        deceive = self.applies(resource)
        if TELEMETRY.enabled:
            TELEMETRY.count("engine.decisions")
            TELEMETRY.count(
                "engine.deceived" if deceive else "engine.passthrough")
        return deceive

    # -- event plumbing --------------------------------------------------------

    def report(self, category: str, api: str, resource: str, pid: int,
               timestamp_ns: int, profile: str = "", **details: Any
               ) -> FingerprintEvent:
        """Record a fingerprint probe that Scarecrow answered deceptively."""
        event = FingerprintEvent(category, api, resource, pid, timestamp_ns,
                                 dict(details))
        self.log.record(event)
        if TELEMETRY.enabled:
            TELEMETRY.count("engine.reports")
            TELEMETRY.count("engine.reports." + category)
        if profile:
            self.profiles.observe_probe(profile)
        if self.ipc is not None:
            self.ipc.send("fingerprint_report", category=category, api=api,
                          resource=resource, pid=pid)
        return event

    def present_registry_data(self, resource: DeceptiveResource):
        """Resource data as it should be served *right now*.

        With exclusive profiles and a committed VM identity, the combined
        multi-vendor ``SystemBiosVersion`` value collapses to the committed
        vendor's string, keeping the machine internally consistent against
        the Section VI-B audit.
        """
        data = resource.data
        if (self.config.exclusive_profiles and
                self.profiles.committed_vm is not None and
                isinstance(data, str) and
                resource.identity.lower().endswith("::systembiosversion")):
            return VENDOR_BIOS_VALUES.get(self.profiles.committed_vm, data)
        return data

    # -- timing deception state --------------------------------------------------

    def attach_process(self, machine: Machine, pid: int) -> None:
        """Record the tick baseline when the DLL lands in a process."""
        self._tick_bases[pid] = machine.clock.tick_count_ms()

    def fake_tick(self, machine: Machine, pid: int) -> int:
        """Low-uptime, slowed-down tick timeline (Section II-B(g)).

        The returned timeline starts a few minutes after "boot" and runs at
        ``identity.tick_rate`` of real time, so sleep-vs-tick comparisons
        observe the acceleration discrepancies sandboxes exhibit.
        """
        base = self._tick_bases.get(pid)
        real_now = machine.clock.tick_count_ms()
        if base is None:
            base = real_now
            self._tick_bases[pid] = base
        elapsed = real_now - base
        identity = self.db.identity
        return identity.fake_uptime_base_ms + int(
            elapsed * identity.tick_rate)

    # -- registry materialization -----------------------------------------------

    def materialize_registry_key(self, path: str) -> RegistryKey:
        """Build an ephemeral key for a deceptive registry path.

        The key chain carries proper parents so ``key.path()`` is correct,
        and it is populated with the database's deceptive values and
        subkeys for that path — but it is *not* inserted into the machine
        registry, so nothing is visible outside the hooked process.
        """
        parts = [p for p in path.replace("/", "\\").split("\\") if p]
        node: Optional[RegistryKey] = None
        for part in parts:
            child = RegistryKey(part, parent=node)
            if node is not None:
                node._children[part.lower()] = child
            node = child
        assert node is not None
        for value_name, data in self.db.registry_values_for_key(path):
            node.set_value(value_name, data)
        for subkey in self.db.registry_subkeys_for_key(path):
            node.ensure_child(subkey)
        return node

    def materialize_counted_key(self, path: str, subkeys: int,
                                values: int) -> RegistryKey:
        """Ephemeral key with exactly N synthetic subkeys / values.

        Used by the wear-and-tear deception to clamp artifact cardinality
        (e.g. 29 ``DeviceClasses`` subkeys, 3 autorun entries).
        """
        node = self.materialize_registry_key(path)
        for index in range(subkeys - node.subkey_count()):
            node.ensure_child(f"{{entry-{index:04d}}}")
        for index in range(values - node.value_count()):
            node.set_value(f"entry{index:04d}", f"value{index:04d}")
        return node

    def reset(self) -> None:
        self.log.clear()
        self.profiles.reset()
        self._tick_bases.clear()
