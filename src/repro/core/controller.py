"""scarecrow.exe — the controller of Figure 2.

The controller (a) starts the target program itself, making *itself* the
parent — deliberately mimicking how sandbox daemons launch samples —
(b) injects scarecrow.dll, (c) follows every descendant the target spawns
(suspend → inject → resume), (d) drains fingerprint reports arriving over
IPC, and (e) runs the self-spawn-loop policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..hooking.injection import inject_dll, inject_into_suspended_child
from ..hooking.ipc import IpcChannel, IpcMessage
from ..winsim.bus import KernelEvent
from ..winsim.machine import Machine
from ..winsim.process import Process
from .database import DeceptionDatabase
from .dll import ScarecrowDll
from .engine import DeceptionEngine
from .events import FingerprintEvent
from .policy import SpawnLoopAlarm, SpawnLoopPolicy
from .profiles import ScarecrowConfig

CONTROLLER_IMAGE = "C:\\Program Files\\Scarecrow\\scarecrow.exe"


class ScarecrowController:
    """One controller instance protecting one machine."""

    def __init__(self, machine: Machine,
                 database: Optional[DeceptionDatabase] = None,
                 config: Optional[ScarecrowConfig] = None,
                 policy: Optional[SpawnLoopPolicy] = None,
                 report_buffer_limit: Optional[int] = None) -> None:
        self.machine = machine
        self.ipc = IpcChannel()
        # Resident deployments bound the report inbox so an endpoint that
        # is never drained cannot grow without limit (fleet service mode);
        # the default stays unbounded for one-shot experiment runs.
        self.ipc.controller.max_pending = report_buffer_limit
        self.engine = DeceptionEngine(database, config, ipc=self.ipc.dll)
        self.dll = ScarecrowDll(self.engine)
        self.policy = policy or SpawnLoopPolicy()
        self.process: Optional[Process] = None
        self._tracked_pids: Set[int] = set()
        self._unsubscribe = machine.bus.subscribe(self._on_kernel_event)
        self.alarms: List[SpawnLoopAlarm] = []

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> Process:
        """Spawn the controller process (idempotent)."""
        if self.process is None or not self.process.alive:
            self.process = self.machine.spawn_process(
                "scarecrow.exe", CONTROLLER_IMAGE, parent=self.machine.explorer)
        return self.process

    def shutdown(self) -> None:
        self._unsubscribe()
        if self.process is not None and self.process.alive:
            self.machine.processes.terminate(self.process.pid)

    # -- launching targets ------------------------------------------------------

    def launch(self, image_path: str, command_line: str = "") -> Process:
        """Launch an untrusted target under Scarecrow protection."""
        controller = self.start()
        name = image_path.rsplit("\\", 1)[-1]
        target = self.machine.spawn_process(
            name, image_path, parent=controller,
            command_line=command_line or image_path)
        target.tags["untrusted"] = True
        self._tracked_pids.add(target.pid)
        inject_dll(self.machine, target, self.dll)
        return target

    def protect_existing(self, process: Process) -> None:
        """Attach to an already-running process (on-demand service mode)."""
        process.tags["untrusted"] = True
        self._tracked_pids.add(process.pid)
        inject_dll(self.machine, process, self.dll)

    def watch_untrusted_origins(self,
                                path_prefixes: Optional[
                                    Sequence[str]] = None) -> None:
        """On-demand service mode (Section II-A).

        "it is preferable that SCARECROW is only visible to suspicious
        target programs, e.g., newly downloaded programs from the
        Internet, and E-mail attachments" — watch process creation and
        transparently protect anything launched from the given directory
        prefixes (default: the user's Downloads and Temp folders), however
        it was started.
        """
        profile = self.machine.user_profile_dir()
        prefixes = tuple(
            p.lower().rstrip("\\") + "\\" for p in (
                path_prefixes if path_prefixes is not None else
                (f"{profile}\\Downloads",
                 f"{profile}\\AppData\\Local\\Temp")))
        self._watched_prefixes = prefixes
        self.start()

    def _matches_watched_origin(self, image_path: str) -> bool:
        prefixes = getattr(self, "_watched_prefixes", ())
        return any(image_path.lower().startswith(prefix)
                   for prefix in prefixes)

    def is_tracked(self, pid: int) -> bool:
        return pid in self._tracked_pids

    @property
    def tracked_pids(self) -> Set[int]:
        return set(self._tracked_pids)

    # -- descendant following -------------------------------------------------

    def _on_kernel_event(self, event: KernelEvent) -> None:
        if event.category != "process" or event.name != "CreateProcess":
            return
        in_tree = event.detail("ppid") in self._tracked_pids
        from_watched_origin = not in_tree and \
            self._matches_watched_origin(event.detail("image", ""))
        if not in_tree and not from_watched_origin:
            return
        child = self.machine.processes.get(event.pid)
        if child is None or not child.alive:
            return
        if from_watched_origin:
            child.tags["untrusted"] = True
        self._tracked_pids.add(child.pid)
        inject_into_suspended_child(self.machine, child, self.dll)
        if from_watched_origin:
            return  # fresh root, not a self-spawn of a tracked tree
        alarm = self.policy.observe_spawn(self.machine, child)
        if alarm is not None:
            self.alarms.append(alarm)
            self.machine.bus.emit(
                "scarecrow", "SpawnLoopAlarm", child.pid,
                self.machine.clock.now_ns, image=alarm.image_name,
                count=alarm.spawn_count, mitigated=alarm.mitigated)

    # -- reports ------------------------------------------------------------------

    def drain_reports(self, limit: Optional[int] = None) -> List[IpcMessage]:
        """Fingerprint reports the DLL sent since the last drain.

        ``limit`` caps how many are taken per call (oldest first); the
        remainder stays queued — within the ``report_buffer_limit`` bound,
        if one was configured — for the next drain.
        """
        return self.ipc.controller.drain(limit)

    @property
    def dropped_reports(self) -> int:
        """Reports evicted by the ``report_buffer_limit`` bound."""
        return self.ipc.controller.dropped

    def fingerprint_events(self) -> List[FingerprintEvent]:
        return self.engine.log.events()

    def first_trigger(self) -> Optional[FingerprintEvent]:
        return self.engine.log.first()

    def push_config_update(self, **changes) -> None:
        """Update engine config at runtime and refresh hooks over IPC."""
        for key, value in changes.items():
            if not hasattr(self.engine.config, key):
                raise AttributeError(f"unknown config field: {key}")
            setattr(self.engine.config, key, value)
        self.ipc.controller.send("config_update", **changes)
        for pid in self._tracked_pids:
            process = self.machine.processes.get(pid)
            if process is not None and process.alive:
                self.dll.refresh_hooks(process)

    def summary(self) -> Dict[str, int]:
        events = self.engine.log.events()
        by_category: Dict[str, int] = {}
        for event in events:
            by_category[event.category] = by_category.get(event.category, 0) + 1
        return by_category
