"""Fingerprint events — what Scarecrow reports when evasive logic probes it.

Every time a hooked API is asked about a deceptive resource, the engine
records a :class:`FingerprintEvent` and forwards it over IPC to the
controller. Table I's "Trigger" column is simply the first such event per
sample.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class FingerprintEvent:
    """One deceptive-resource probe answered by Scarecrow."""

    #: Which deception answered, e.g. "registry", "file", "debugger",
    #: "hardware", "network", "window", "library", "process", "timing",
    #: "weartear", "hook".
    category: str
    #: The API the probe came through, e.g. "kernel32.dll!IsDebuggerPresent".
    api: str
    #: The resource that matched, e.g. the registry path or file name.
    resource: str
    #: Acting pid inside the protected process tree.
    pid: int
    timestamp_ns: int
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def trigger_name(self) -> str:
        """Human-readable trigger label, Table I style (``API()`` form)."""
        return self.api.split("!", 1)[1] + "()"


class FingerprintLog:
    """Accumulates events inside the engine; controller drains copies."""

    def __init__(self) -> None:
        self._events: List[FingerprintEvent] = []

    def record(self, event: FingerprintEvent) -> None:
        self._events.append(event)

    def events(self) -> List[FingerprintEvent]:
        return list(self._events)

    def first(self) -> Optional[FingerprintEvent]:
        return self._events[0] if self._events else None

    def by_category(self, category: str) -> List[FingerprintEvent]:
        return [e for e in self._events if e.category == category]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
