"""Deceptive-resource collection from public sandboxes (Section II-C).

The paper submits a crawler binary to VirusTotal and Malwr; the crawler
inventories files, folders, registries, processes and system configuration
inside the sandbox and ships the inventory home. Resources present in the
sandboxes but absent from a clean bare-metal baseline become deceptive
resources ("17,540 files, 24 processes, and 1,457 registry entries are
added to SCARECROW").

Here the crawler literally runs inside simulated public-sandbox machines
(:func:`repro.analysis.environments.build_public_sandbox`) and the same
collect → diff → extend pipeline produces the same counts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from ..winsim.machine import Machine
from .database import DeceptionDatabase
from .resources import Origin


@dataclasses.dataclass
class CrawlerReport:
    """What the crawler shipped home from one machine."""

    machine_label: str
    files: Set[str] = dataclasses.field(default_factory=set)
    processes: Set[str] = dataclasses.field(default_factory=set)
    registry_keys: Set[str] = dataclasses.field(default_factory=set)
    registry_values: Set[Tuple[str, str]] = dataclasses.field(
        default_factory=set)
    disk_total_bytes: int = 0
    ram_total_bytes: int = 0
    cpu_cores: int = 0

    @property
    def registry_entry_count(self) -> int:
        return len(self.registry_keys) + len(self.registry_values)


def run_crawler(machine: Machine, label: str) -> CrawlerReport:
    """Inventory one machine the way the submitted crawler binary would."""
    report = CrawlerReport(machine_label=label)
    for path in machine.filesystem.all_paths():
        node = machine.filesystem.stat(path)
        if node is not None and not node.is_dir:
            report.files.add(path.lower())
    report.processes = {p.name.lower()
                        for p in machine.processes.running()}
    for key in machine.registry.iter_all_keys():
        path = key.path()
        report.registry_keys.add(path.lower())
        for value in key.values():
            report.registry_values.add((path.lower(), value.name.lower()))
    drive = machine.filesystem.drive("C:")
    report.disk_total_bytes = drive.total_bytes if drive else 0
    report.ram_total_bytes = machine.hardware.total_ram
    report.cpu_cores = machine.hardware.cpu.cores
    return report


@dataclasses.dataclass
class ResourceDiff:
    """Resources unique to the sandboxes (absent from the clean baseline)."""

    files: Set[str]
    processes: Set[str]
    registry_keys: Set[str]
    registry_values: Set[Tuple[str, str]]

    @property
    def registry_entry_count(self) -> int:
        return len(self.registry_keys) + len(self.registry_values)


def diff_reports(sandbox_reports: List[CrawlerReport],
                 baseline: CrawlerReport) -> ResourceDiff:
    """Union of sandbox inventories minus the clean-baseline inventory.

    Even if the sandboxes serve *deceptive* values themselves, anything
    unique to them still fingerprints them (the paper makes this point
    explicitly), so no attempt is made to validate authenticity.
    """
    files: Set[str] = set()
    processes: Set[str] = set()
    registry_keys: Set[str] = set()
    registry_values: Set[Tuple[str, str]] = set()
    for report in sandbox_reports:
        files |= report.files
        processes |= report.processes
        registry_keys |= report.registry_keys
        registry_values |= report.registry_values
    return ResourceDiff(
        files=files - baseline.files,
        processes=processes - baseline.processes,
        registry_keys=registry_keys - baseline.registry_keys,
        registry_values=registry_values - baseline.registry_values,
    )


def extend_database(db: DeceptionDatabase, diff: ResourceDiff,
                    profile: str = "sandbox-generic") -> Dict[str, int]:
    """Add crawled resources to the deception database; returns counts."""
    for path in sorted(diff.files):
        db.add_file(path, profile, origin=Origin.CRAWLED)
    for name in sorted(diff.processes):
        db.add_process(name, profile, origin=Origin.CRAWLED)
    for key in sorted(diff.registry_keys):
        db.add_registry_key(key, profile, origin=Origin.CRAWLED)
    for key, value_name in sorted(diff.registry_values):
        db.add_registry_value(key, value_name, "", profile,
                              origin=Origin.CRAWLED)
    return {
        "files": len(diff.files),
        "processes": len(diff.processes),
        "registry_entries": diff.registry_entry_count,
    }


def collect_from_public_sandboxes(db: DeceptionDatabase,
                                  sandboxes: List[Tuple[str, Machine]],
                                  baseline: Machine) -> Dict[str, int]:
    """End-to-end Section II-C pipeline: crawl, diff, extend."""
    reports = [run_crawler(machine, label) for label, machine in sandboxes]
    baseline_report = run_crawler(baseline, "clean-baseline")
    diff = diff_reports(reports, baseline_report)
    return extend_database(db, diff)
