"""Deceptive resource model — the taxonomy of Section II-B.

Resources split into the paper's three groups (software, hardware, network)
with software subdivided into files/folders, processes, libraries, GUI
windows, registry entries, function hooks, and exception processing. Each
concrete resource knows its category and which sandbox/VM/tool profile it
imitates, so profile filtering (Section VI-B) can mask conflicting subsets.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Optional


class ResourceCategory(enum.Enum):
    """Categories of deceptive resources (Section II-B)."""

    FILE = "file"
    FOLDER = "folder"
    PROCESS = "process"
    LIBRARY = "library"
    WINDOW = "window"
    REGISTRY_KEY = "registry_key"
    REGISTRY_VALUE = "registry_value"
    DEVICE = "device"
    MUTEX = "mutex"
    HARDWARE = "hardware"
    NETWORK = "network"
    WEARTEAR = "weartear"


class Origin(enum.Enum):
    """Where a deceptive resource came from (Section II-C)."""

    CURATED = "curated"          # manually extracted from papers/articles
    CRAWLED = "crawled"          # collected from public sandboxes
    MALGENE = "malgene"          # learned from MalGene evasion signatures


@dataclasses.dataclass(frozen=True)
class DeceptiveResource:
    """One deceptive resource entry.

    ``identity`` is the matchable name: a full path for files, a process
    name, a DLL name, a ``(class, title)`` string for windows, a registry
    path (optionally ``path::value``), a device name, or a config field
    name for hardware/network values.
    """

    category: ResourceCategory
    identity: str
    #: Which environment the resource imitates: "vbox", "vmware", "qemu",
    #: "bochs", "wine", "sandboxie", "cuckoo", "debugger", "forensic",
    #: "sandbox-generic".
    profile: str
    #: Payload for value-like resources (registry data, fake sizes).
    data: Any = None
    origin: Origin = Origin.CURATED
    protected: bool = False  # process entries protected from termination

    def matches(self, probe: str) -> bool:
        """Case-insensitive identity match, with basename fallback for files."""
        probe_l = probe.lower()
        identity_l = self.identity.lower()
        if probe_l == identity_l:
            return True
        if self.category in (ResourceCategory.FILE, ResourceCategory.FOLDER):
            return identity_l.rsplit("\\", 1)[-1] == probe_l.rsplit("\\", 1)[-1]
        return False


def registry_value_identity(key_path: str, value_name: str) -> str:
    """Identity encoding for REGISTRY_VALUE resources."""
    return f"{key_path}::{value_name}"


def split_registry_value_identity(identity: str) -> Optional[tuple]:
    if "::" not in identity:
        return None
    key_path, _, value_name = identity.rpartition("::")
    return (key_path, value_name)
