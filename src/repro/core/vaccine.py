"""Vaccination baseline — AutoVac-style immunization (related work).

Wichmann & Gerhards-Padilla and Xu et al. (the paper's references [33] and
[34]) deter malware by planting *family-specific infection markers*: if a
sample's single-instance guard finds its own marker mutex/file, it believes
the machine is already infected and stands down.

The paper's critique, which this module lets the benchmarks quantify:
vaccination "mainly explored malware specific resources. If the malware
fingerprints analysis environment, it cannot generate resources" — i.e. a
vaccine only works for families whose markers are already known, and does
nothing against environment-fingerprinting evasion. Scarecrow inverts the
trade-off: generic against environment fingerprinting, inert against pure
marker guards.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

from ..winsim.machine import Machine


@dataclasses.dataclass(frozen=True)
class FamilyVaccine:
    """The known infection markers of one malware family."""

    family: str
    mutex_markers: Sequence[str] = ()
    file_markers: Sequence[str] = ()
    registry_markers: Sequence[str] = ()


#: Representative marker inventory (the real systems extract these
#: automatically from family corpora; here they are curated).
KNOWN_VACCINES: tuple = (
    FamilyVaccine("Zeus", mutex_markers=("_AVIRA_2109",),
                  file_markers=("C:\\Windows\\System32\\sdra64.exe",)),
    FamilyVaccine("Conficker", mutex_markers=("Global\\jhdheruhf",)),
    FamilyVaccine("Sality", mutex_markers=("Ap1mutx7",),
                  registry_markers=(
                      "HKEY_CURRENT_USER\\Software\\Aasppapmmxkvs",)),
    FamilyVaccine("CryptoLocker", mutex_markers=("CryptoLockerMutex",)),
    FamilyVaccine("Andromeda", mutex_markers=("lol_mutex_v2",)),
)


class VaccinationAgent:
    """Plants (and tracks) infection markers on a machine."""

    def __init__(self,
                 vaccines: Optional[Iterable[FamilyVaccine]] = None) -> None:
        self.vaccines: List[FamilyVaccine] = list(
            vaccines if vaccines is not None else KNOWN_VACCINES)
        self.inoculated_families: List[str] = []

    def add_vaccine(self, vaccine: FamilyVaccine) -> None:
        self.vaccines.append(vaccine)

    def covers(self, family: str) -> bool:
        return any(v.family.lower() == family.lower() for v in self.vaccines)

    def inoculate(self, machine: Machine,
                  families: Optional[Sequence[str]] = None) -> int:
        """Plant markers for the given families (default: all known).

        Returns the number of families inoculated. Idempotent.
        """
        wanted = None if families is None else \
            {f.lower() for f in families}
        count = 0
        for vaccine in self.vaccines:
            if wanted is not None and vaccine.family.lower() not in wanted:
                continue
            for mutex in vaccine.mutex_markers:
                machine.mutexes.create(mutex)
            for path in vaccine.file_markers:
                machine.filesystem.write_file(
                    path, b"", when_ms=machine.clock.tick_count_ms())
            for key in vaccine.registry_markers:
                machine.registry.create_key(key)
            if vaccine.family not in self.inoculated_families:
                self.inoculated_families.append(vaccine.family)
            count += 1
        return count

    def is_inoculated(self, machine: Machine, family: str) -> bool:
        for vaccine in self.vaccines:
            if vaccine.family.lower() != family.lower():
                continue
            return (
                all(machine.mutexes.exists(m)
                    for m in vaccine.mutex_markers) and
                all(machine.filesystem.exists(p)
                    for p in vaccine.file_markers) and
                all(machine.registry.key_exists(k)
                    for k in vaccine.registry_markers))
        return False


def build_marker_gated_corpus() -> List["EvasiveSample"]:
    """A corpus of marker-guarded samples for the baseline comparison.

    One sample per known vaccine family (marker-gated only) plus one
    *hybrid* per family that also carries an environment-fingerprinting
    check — the population where Scarecrow and vaccination overlap.
    """
    from ..malware.payloads import DropperPayload
    from ..malware.sample import EvadeAction, EvasiveSample
    samples: List[EvasiveSample] = []
    for index, vaccine in enumerate(KNOWN_VACCINES):
        if not vaccine.mutex_markers:
            continue
        marker = vaccine.mutex_markers[0]
        samples.append(EvasiveSample(
            md5=f"{index:02d}" + "a0" * 15,
            exe_name=f"{vaccine.family.lower()}_pure.exe",
            family=vaccine.family,
            check_names=("infection_marker_mutex",),
            evade_action=EvadeAction.TERMINATE,
            payload=DropperPayload((f"{vaccine.family.lower()}_p.exe",)),
            infection_marker=marker))
        samples.append(EvasiveSample(
            md5=f"{index:02d}" + "b1" * 15,
            exe_name=f"{vaccine.family.lower()}_hybrid.exe",
            family=vaccine.family,
            check_names=("infection_marker_mutex", "is_debugger_present"),
            evade_action=EvadeAction.TERMINATE,
            payload=DropperPayload((f"{vaccine.family.lower()}_h.exe",)),
            infection_marker=marker))
    return samples
