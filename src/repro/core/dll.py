"""scarecrow.dll — the injected payload that installs the deception hooks."""

from __future__ import annotations

from ..hooking.injection import hook_manager_of
from ..winsim.machine import Machine
from ..winsim.process import Process
from .engine import DeceptionEngine
from .handlers import build_handlers

HOOK_OWNER = "scarecrow"


class ScarecrowDll:
    """Injectable DLL model (satisfies the InjectableDll protocol).

    On injection it installs every handler from
    :func:`repro.core.handlers.build_handlers` as an inline hook in the
    target process. Exports already hooked by someone else (e.g. Cuckoo's
    monitor hooking ``ShellExecuteExW``) are left alone — their existing
    patched prologue already serves Scarecrow's purpose of *looking*
    monitored.
    """

    name = "scarecrow.dll"

    def __init__(self, engine: DeceptionEngine) -> None:
        self.engine = engine
        self._handlers = build_handlers(engine)

    def on_inject(self, machine: Machine, process: Process) -> None:
        manager = hook_manager_of(process, create=True)
        assert manager is not None
        installed = 0
        for export, handler in self._handlers.items():
            if manager.is_hooked(export):
                continue
            manager.install(export, handler, owner=HOOK_OWNER)
            installed += 1
        self.engine.attach_process(machine, process.pid)
        process.tags["scarecrow_protected"] = True
        process.tags["scarecrow_hooks_installed"] = installed

    def refresh_hooks(self, process: Process) -> int:
        """Re-sync hooks after a config update pushed over IPC."""
        manager = hook_manager_of(process)
        if manager is None:
            return 0
        manager.remove_all(owner=HOOK_OWNER)
        self._handlers = build_handlers(self.engine)
        installed = 0
        for export, handler in self._handlers.items():
            if manager.is_hooked(export):
                continue
            manager.install(export, handler, owner=HOOK_OWNER)
            installed += 1
        process.tags["scarecrow_hooks_installed"] = installed
        return installed
