"""Persistence for the deception database and configuration.

The crawl of Section II-C is expensive (public-sandbox submissions take
hours in the real pipeline); its output — and any MalGene-learned
signatures — must survive redeployment. This module round-trips a
:class:`DeceptionDatabase` and a :class:`ScarecrowConfig` through plain
JSON so a deployment ships one artifact:

    database -> dump_database() -> scarecrow_db.json -> load_database()
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from .database import (DeceptionDatabase, FakeHardwareProfile,
                       FakeIdentityProfile, FakeNetworkProfile,
                       WearTearProfile)
from .profiles import ScarecrowConfig
from .resources import Origin

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Database
# ---------------------------------------------------------------------------

def dump_database(db: DeceptionDatabase) -> Dict[str, Any]:
    """Serialize ``db`` to a JSON-compatible dict."""

    def entries(mapping):
        return [{"identity": r.identity, "profile": r.profile,
                 "origin": r.origin.value, "protected": r.protected,
                 "data": r.data if not isinstance(r.data, bytes) else None}
                for r in mapping]

    return {
        "version": FORMAT_VERSION,
        "files": entries(db._files.values()),
        "folders": entries(db._folders.values()),
        "processes": entries(db._processes.values()),
        "libraries": entries(db._libraries.values()),
        "windows": entries(db._windows),
        "registry_keys": entries(db._registry_keys.values()),
        "registry_values": entries(db._registry_values.values()),
        "devices": entries(db._devices.values()),
        "mutexes": entries(db._mutexes.values()),
        "hardware": dataclasses.asdict(db.hardware),
        "identity": dataclasses.asdict(db.identity),
        "network": dataclasses.asdict(db.network),
        "weartear": dataclasses.asdict(db.weartear),
    }


def load_database(blob: Dict[str, Any]) -> DeceptionDatabase:
    """Rebuild a database previously produced by :func:`dump_database`.

    The curated baseline is *not* re-added implicitly: the dump is the
    complete inventory, so loading an old artifact reproduces exactly the
    resources it was saved with.
    """
    version = blob.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported database format version: {version!r}")
    db = DeceptionDatabase.__new__(DeceptionDatabase)
    db._files = {}
    db._basenames = {}
    db._folders = {}
    db._processes = {}
    db._libraries = {}
    db._windows = []
    db._registry_keys = {}
    db._registry_values = {}
    db._devices = {}
    db._mutexes = {}
    db.hardware = FakeHardwareProfile(**blob["hardware"])
    db.identity = FakeIdentityProfile(**blob["identity"])
    db.network = FakeNetworkProfile(**blob["network"])
    db.weartear = WearTearProfile(**blob["weartear"])

    def origin_of(entry):
        return Origin(entry["origin"])

    for entry in blob["files"]:
        db.add_file(entry["identity"], entry["profile"],
                    origin=origin_of(entry))
    for entry in blob["folders"]:
        db.add_folder(entry["identity"], entry["profile"],
                      origin=origin_of(entry))
    for entry in blob["processes"]:
        db.add_process(entry["identity"], entry["profile"],
                       protected=entry["protected"], origin=origin_of(entry))
    for entry in blob["libraries"]:
        db.add_library(entry["identity"], entry["profile"],
                       origin=origin_of(entry))
    for entry in blob["windows"]:
        class_name, _, title = entry["identity"].partition("|")
        db.add_window(class_name, title or None, entry["profile"])
    for entry in blob["registry_keys"]:
        db.add_registry_key(entry["identity"], entry["profile"],
                            origin=origin_of(entry))
    for entry in blob["registry_values"]:
        key_path, _, value_name = entry["identity"].rpartition("::")
        db.add_registry_value(key_path, value_name, entry["data"],
                              entry["profile"], origin=origin_of(entry))
    for entry in blob["devices"]:
        db.add_device(entry["identity"], entry["profile"])
    for entry in blob["mutexes"]:
        db.add_mutex(entry["identity"], entry["profile"])
    return db


def save_database(db: DeceptionDatabase, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dump_database(db), handle, indent=1)


def load_database_file(path: str) -> DeceptionDatabase:
    with open(path, encoding="utf-8") as handle:
        return load_database(json.load(handle))


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------

def dump_config(config: ScarecrowConfig) -> Dict[str, Any]:
    blob = dataclasses.asdict(config)
    if blob["profiles"] is not None:
        blob["profiles"] = sorted(blob["profiles"])
    return blob


def load_config(blob: Dict[str, Any]) -> ScarecrowConfig:
    data = dict(blob)
    if data.get("profiles") is not None:
        data["profiles"] = set(data["profiles"])
    valid_fields = {f.name for f in dataclasses.fields(ScarecrowConfig)}
    unknown = set(data) - valid_fields
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    return ScarecrowConfig(**data)
