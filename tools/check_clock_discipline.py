#!/usr/bin/env python
"""Clock-discipline lint for the Windows simulation layer.

``repro.winsim`` is the deterministic core of the reproduction: every
timestamp must come from the virtual clock (``machine.clock``) and every
"random" artifact from seeded state, or serial and pooled sweeps stop
being byte-identical. This lint rejects the host-nondeterminism escape
hatches at the import/call level:

* ``import time`` / ``from time import ...`` (``time.time``,
  ``perf_counter``, ``monotonic`` — all host clocks);
* ``import random`` / ``from random import ...``;
* ``import datetime`` / ``from datetime import ...`` and calls to
  ``datetime.now()``, ``datetime.utcnow()``, ``datetime.today()``,
  ``date.today()``.

Run it directly (``python tools/check_clock_discipline.py [PATH ...]``;
defaults to ``src/repro/winsim``) or via ``tests/test_hygiene.py``, which
keeps it wired into the tier-1 suite. Exit status 1 means violations were
printed, one ``path:line: message`` per line.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Modules whose very import means host nondeterminism in winsim.
FORBIDDEN_MODULES = ("time", "random", "datetime")

#: ``obj.method`` calls that read the host clock even when the module
#: import itself arrived through an allowed path.
FORBIDDEN_METHOD_CALLS = {
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"), ("time", "time"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "monotonic"),
    ("random", "random"),
}

#: ``(path, line, message)`` — one lint finding.
Violation = Tuple[str, int, str]


def _module_root(name: str) -> str:
    return name.split(".", 1)[0]


def check_source(path: str, source: str) -> List[Violation]:
    """Lint one file's source; returns violations in line order."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    violations: List[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = _module_root(alias.name)
                if root in FORBIDDEN_MODULES:
                    violations.append((
                        path, node.lineno,
                        f"import {alias.name}: use the machine's virtual "
                        f"clock, not the host {root!r} module"))
        elif isinstance(node, ast.ImportFrom):
            root = _module_root(node.module or "")
            if node.level == 0 and root in FORBIDDEN_MODULES:
                names = ", ".join(alias.name for alias in node.names)
                violations.append((
                    path, node.lineno,
                    f"from {node.module} import {names}: use the "
                    f"machine's virtual clock, not the host {root!r} "
                    f"module"))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and
                    isinstance(func.value, ast.Name) and
                    (func.value.id, func.attr) in FORBIDDEN_METHOD_CALLS):
                violations.append((
                    path, node.lineno,
                    f"{func.value.id}.{func.attr}() reads host state; "
                    f"derive it from machine.clock instead"))
    violations.sort(key=lambda violation: violation[1])
    return violations


def check_paths(paths: Iterable[str]) -> List[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    violations: List[Violation] = []
    for raw in paths:
        root = Path(raw)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            violations.extend(
                check_source(str(file), file.read_text(encoding="utf-8")))
    return violations


def main(argv: List[str]) -> int:
    paths = argv or ["src/repro/winsim"]
    violations = check_paths(paths)
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"{len(violations)} clock-discipline violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
