#!/usr/bin/env python
"""Clock-discipline lint — thin wrapper over scarelint's SC001 checker.

Historically this script carried its own AST walk; the logic now lives
in :mod:`repro.staticcheck.checkers` as rule **SC001**, with the full
framework behind ``repro lint`` (see docs/STATIC_ANALYSIS.md). This
wrapper keeps the original command-line contract so existing invocations
don't break:

* ``python tools/check_clock_discipline.py [PATH ...]`` — defaults to
  ``src/repro/winsim``;
* violations print as ``path:line: message``, one per line, and the
  exit status is 1 when any were found;
* every given path is checked unconditionally (no zone gating, no
  baseline) — this is the raw SC001 rule, as before.

The importable :func:`check_source` / :func:`check_paths` helpers keep
their ``(path, line, message)`` tuple shape.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable, List, Tuple

_REPO_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_REPO_SRC) not in sys.path:
    sys.path.insert(0, str(_REPO_SRC))

from repro.staticcheck.cache import build_context  # noqa: E402
from repro.staticcheck.checkers import check_clock_discipline  # noqa: E402

#: ``(path, line, message)`` — one lint finding (legacy shape).
Violation = Tuple[str, int, str]


def check_source(path: str, source: str) -> List[Violation]:
    """Lint one file's source; returns violations in line order."""
    context = build_context(path, source, module="repro.winsim._wrapped")
    findings = list(check_clock_discipline(context))
    if context.parse_error is not None:
        findings.append(context.parse_error)
    findings.sort(key=lambda finding: finding.line)
    return [(path, finding.line, finding.message) for finding in findings]


def check_paths(paths: Iterable[str]) -> List[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    violations: List[Violation] = []
    for raw in paths:
        root = Path(raw)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            violations.extend(
                check_source(str(file), file.read_text(encoding="utf-8")))
    return violations


def main(argv: List[str]) -> int:
    paths = argv or ["src/repro/winsim"]
    violations = check_paths(paths)
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"{len(violations)} clock-discipline violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
