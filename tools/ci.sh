#!/usr/bin/env bash
# CI gate: scarelint first (cheap, catches structural rot), then the
# tier-1 test suite, then the lint wall-time budget, then the fleet
# rollup byte-identity sweep. Run from anywhere; mirrors what
# .github/workflows/ci.yml executes.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== scarelint (full tree, baseline-checked, dead entries fatal) =="
if ! lint_output=$(python -m repro lint src); then
    printf '%s\n' "$lint_output" >&2
    exit 1
fi
printf '%s\n' "$lint_output"
# A dead baseline entry only warns in interactive runs; CI treats it as
# rot that must be pruned with --write-baseline.
if grep -q "dead baseline entry" <<<"$lint_output"; then
    echo "ci: dead baseline entries found — prune with" \
         "'python -m repro lint src --write-baseline'" >&2
    exit 1
fi

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== staticcheck benchmark gate (full-tree lint < 10s) =="
python -m pytest benchmarks/bench_staticcheck.py --benchmark-only -q

# Byte-identity across shards ∈ {1,2,4} is asserted on every box; the
# sharded speedup assertion self-gates on os.cpu_count() >= 2, so this
# gate is honest on single-core runners too.
echo "== fleet benchmark gate (rollup byte-identity, sharded sweep) =="
python -m pytest benchmarks/bench_fleet.py --benchmark-only -q

echo "== dbops benchmark gate (publish latency, no-op rollout identity) =="
python -m pytest benchmarks/bench_dbops.py --benchmark-only -q

echo "ci: all gates passed"
