#!/usr/bin/env python3
"""The fingerprinting arms race: Pafish and wear-and-tear vs Scarecrow.

Reproduces the Table II sweep (Pafish across bare-metal sandbox, Cuckoo VM
and end-user machine, with and without Scarecrow) and the Table III
wear-and-tear verdict flip, printing both paper tables.
"""

from repro.experiments import (render_table2, render_table3, run_table2,
                               run_table3, matches_paper)


def main() -> None:
    print("Running Pafish in 3 environments x 2 configurations...")
    cells = run_table2()
    print(render_table2(cells))
    assert matches_paper(cells)

    print("\nRunning the wear-and-tear fingerprinting tool...")
    table3 = run_table3()
    print(render_table3(table3))
    assert table3.scarecrow_flips_verdict

    print("\nWith Scarecrow deployed, the actively-used workstation is "
          "indistinguishable from an analysis environment:")
    print(f"  decision path: {table3.verdict_with.decision_path[-1]}")


if __name__ == "__main__":
    main()
