#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Table I, Figure 4 (full 1,054-sample corpus — the slow part, ~10 s),
Table II, Table III, and both Section V case studies.

Usage::

    python examples/reproduce_paper.py [output_dir]

With an output directory, each artifact is additionally written to
``<output_dir>/<name>.txt``.
"""

import pathlib
import sys
import time

from repro.experiments import (render_case1, render_case2, render_figure4,
                               render_table1, render_table2, render_table3,
                               run_case1, run_case2, run_figure4,
                               run_table1, run_table2, run_table3)

ARTIFACTS = (
    ("table1", run_table1, render_table1),
    ("figure4", run_figure4, render_figure4),
    ("table2", run_table2, render_table2),
    ("table3", run_table3, render_table3),
    ("case1_kasidet", run_case1, render_case1),
    ("case2_ransomware", run_case2, render_case2),
)


def main(argv=None) -> None:
    args = sys.argv[1:] if argv is None else argv
    out_dir = pathlib.Path(args[0]) if args else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name, runner, renderer in ARTIFACTS:
        start = time.perf_counter()
        text = renderer(runner())
        elapsed = time.perf_counter() - start
        print(f"[{name}: {elapsed:.1f}s]")
        print(text)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
    if out_dir is not None:
        print(f"artifacts written to {out_dir}/")


if __name__ == "__main__":
    main()
