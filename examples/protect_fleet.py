#!/usr/bin/env python3
"""Fleet-protection scenario: a resident service over many endpoints.

The paper deploys Scarecrow on end-user machines; `repro.fleet` scales
that to a *fleet*: here 6 protected endpoints receive a seeded stream of
48 events — benign installer launches, evasive-malware arrivals from a
mixed family pool, and reboot/deep-freeze resets — through the bounded
admission queue. The run is killed after its first round, resumed from
the checkpoint, and the resumed rollup is proven byte-identical to an
uninterrupted run (the service's determinism contract, docs/FLEET.md).
"""

import tempfile
from pathlib import Path

from repro.fleet import FleetService, build_fleet_report, \
    render_fleet_report

ENDPOINTS = 6
EVENTS = 48
SEED = 2026


def main() -> None:
    config = dict(endpoints=ENDPOINTS, events=EVENTS, seed=SEED,
                  queue_limit=12, machine_factory="bare-metal-light")

    # --- the uninterrupted reference run ---------------------------------
    reference = FleetService(**config).run()
    report = build_fleet_report(reference)
    print(render_fleet_report(report, reference))

    # --- kill mid-stream, then resume from the checkpoint ----------------
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = str(Path(scratch) / "fleet.ckpt")
        partial = FleetService(**config, checkpoint_path=checkpoint).run(
            stop_after_rounds=1)
        print(f"\nservice killed after round {partial.rounds_done}/"
              f"{partial.rounds_total} "
              f"({len(partial.records)}/{EVENTS} events survive in the "
              f"checkpoint)")
        resumed = FleetService(**config, checkpoint_path=checkpoint,
                               resume=True).run()
    assert resumed.completed
    assert resumed.resumed_rounds == partial.rounds_done

    # --- the contract: resume reproduces the reference byte for byte -----
    reference_rollup = report.to_json()
    resumed_rollup = build_fleet_report(resumed).to_json()
    assert resumed_rollup == reference_rollup
    print(f"resumed run replayed {resumed.events_resumed} events from the "
          f"checkpoint and executed the rest")
    print("resume rollup byte-identical to the uninterrupted run: OK")

    # --- fleet health summary --------------------------------------------
    print(f"\nfleet verdicts: {report.deactivated}/{report.malware_events} "
          f"malware arrivals deactivated "
          f"({report.deactivation_rate:.0%}), "
          f"{report.benign_ok}/{report.benign_events} benign installs "
          f"clean, {report.resets} deep-freeze resets")


if __name__ == "__main__":
    main()
