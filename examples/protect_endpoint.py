#!/usr/bin/env python3
"""Endpoint-protection scenario: one controller, mixed workload.

An actively-used workstation runs a normal day's software — plus three
pieces of evasive malware arriving from downloads. Everything untrusted is
launched through scarecrow.exe; the example shows per-sample verdicts,
fingerprint reports flowing over IPC, the self-spawn-loop alarm, and the
zero-impact run of a benign installer under the same deception engine.
"""

from repro import winapi
from repro.analysis.environments import build_end_user_machine
from repro.core import ScarecrowConfig, ScarecrowController
from repro.malware import (build_cnet_corpus, build_joesec_samples,
                           build_kasidet, build_locky)
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import TOP10_FAMILY_SPECS


def main() -> None:
    machine = build_end_user_machine()
    controller = ScarecrowController(
        machine, config=ScarecrowConfig(enable_username=False))

    # --- three hostile arrivals ------------------------------------------
    respawner = next(
        s for s in build_malgene_corpus([TOP10_FAMILY_SPECS[0]])
        if s.evade_action.value == "self_spawn")
    hostile = [build_locky(), build_kasidet(), respawner]
    for sample in hostile:
        machine.filesystem.write_file(sample.image_path, b"MZ")
        target = controller.launch(sample.image_path)
        result = sample.run(machine, target)
        verdict = "DEACTIVATED" if not result.executed_payload else "RAN"
        print(f"{sample.family:<10} {sample.md5[:8]}  {verdict:<12} "
              f"trigger={result.trigger}  spawns={result.self_spawn_count}")

    # --- fingerprint telemetry over IPC ----------------------------------
    reports = controller.drain_reports()
    print(f"\n{len(reports)} fingerprint reports received by scarecrow.exe; "
          f"by category: {controller.summary()}")

    # --- self-spawn-loop alarm (Section VI-C) -----------------------------
    for alarm in controller.alarms:
        print(f"ALARM: {alarm.image_name} respawned {alarm.spawn_count}x "
              f"(mitigated={alarm.mitigated})")
    assert controller.alarms, "the Symmi respawner should have alarmed"

    # --- a benign installer under the same engine -------------------------
    chrome = build_cnet_corpus()[0]
    target = controller.launch(chrome.image_path)
    report = chrome.run(machine, target)
    print(f"\nbenign check: {report.program} installed={report.installed} "
          f"ran={report.ran} error={report.error}")
    assert report.installed and report.error is None


if __name__ == "__main__":
    main()
