#!/usr/bin/env python3
"""The Section II-C learning loop: MalGene signatures feed the database.

A sample that evades with a registry check unknown to Scarecrow's database
initially survives deception. Running it in two analysis environments,
aligning the traces MalGene-style, and feeding the extracted signature back
into the database closes the gap: the next protected run deactivates it.
"""

from repro.analysis.agent import run_sample
from repro.analysis.environments import (build_bare_metal_sandbox,
                                         build_cuckoo_vm_sandbox)
from repro.analysis.malgene import extract_evasion_signature, learn_signature
from repro.core import DeceptionDatabase
from repro.malware import register_check
from repro.malware.payloads import DropperPayload
from repro.malware.sample import EvadeAction, EvasiveSample

NOVEL_KEY = ("HKEY_LOCAL_MACHINE\\SOFTWARE\\AcmeDynamics\\"
             "HypervisorToolkit")


@register_check("novel_vendor_key", "RegOpenKeyEx()")
def _novel_vendor_key(api) -> bool:
    from repro.winsim.errors import Win32Error
    err, handle = api.RegOpenKeyExA(
        "HKEY_LOCAL_MACHINE", "SOFTWARE\\AcmeDynamics\\HypervisorToolkit")
    if err == Win32Error.ERROR_SUCCESS:
        api.RegCloseKey(handle)
        return True
    return False


def build_sample() -> EvasiveSample:
    return EvasiveSample(
        md5="77" * 16, exe_name="novel_evader.exe", family="Novel",
        check_names=("novel_vendor_key",),
        evade_action=EvadeAction.TERMINATE,
        payload=DropperPayload(("implant.exe",)))


def main() -> None:
    sample = build_sample()
    db = DeceptionDatabase()

    # 1. The novel check is not in the database: deception misses it.
    record = run_sample(build_bare_metal_sandbox(aged=False), sample,
                        with_scarecrow=True, database=db)
    print(f"before learning: payload ran = {record.result.executed_payload}")
    assert record.result.executed_payload

    # 2. MalGene setting: one environment where it evades (a VM whose
    #    image carries the vendor key), one where it detonates.
    vm = build_cuckoo_vm_sandbox()
    vm.registry.create_key(NOVEL_KEY)
    evaded = run_sample(vm, sample, with_scarecrow=False)
    detonated = run_sample(build_bare_metal_sandbox(aged=False), sample,
                           with_scarecrow=False)
    signature = extract_evasion_signature(evaded.trace, detonated.trace)
    print(f"extracted evasion signature: {signature.describe()}")

    # 3. Feed it back and re-protect.
    assert learn_signature(db, signature)
    record = run_sample(build_bare_metal_sandbox(aged=False), sample,
                        with_scarecrow=True, database=db)
    print(f"after learning:  payload ran = {record.result.executed_payload} "
          f"(trigger={record.result.trigger})")
    assert not record.result.executed_payload


if __name__ == "__main__":
    main()
