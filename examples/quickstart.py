#!/usr/bin/env python3
"""Quickstart: deactivate the WannaCry variant on a simulated end host.

The whole Scarecrow story in ~40 lines: build a machine with user
documents on it, run the evasive WannaCry variant bare (it encrypts),
reset, run it under Scarecrow (its kill-switch probe gets a deceptive
answer and it exits without touching a file).
"""

from repro.analysis.deepfreeze import DeepFreeze
from repro.core import ScarecrowController
from repro.malware import build_wannacry_variant
from repro.winsim import Machine


def build_victim_machine() -> Machine:
    machine = Machine().boot()
    documents = "C:\\Users\\user\\Documents"
    for name in ("thesis.docx", "family_photos.zip", "taxes_2019.xlsx"):
        machine.filesystem.write_file(f"{documents}\\{name}",
                                      f"contents of {name}".encode())
    return machine


def main() -> None:
    machine = build_victim_machine()
    freeze = DeepFreeze(machine)
    freeze.freeze()
    sample = build_wannacry_variant()
    machine.filesystem.write_file(sample.image_path, b"MZ wannacry")

    # --- Run 1: no protection -------------------------------------------
    victim = machine.spawn_process(sample.exe_name, sample.image_path,
                                   parent=machine.explorer)
    result = sample.run(machine, victim)
    encrypted = result.payload_outcome.files_encrypted
    print(f"without Scarecrow: payload ran={result.executed_payload}, "
          f"{len(encrypted)} files encrypted")
    assert machine.filesystem.exists(
        "C:\\Users\\user\\Documents\\thesis.docx.WCRY")

    # --- Reset, Run 2: under Scarecrow ----------------------------------
    freeze.reset()
    machine.filesystem.write_file(sample.image_path, b"MZ wannacry")
    controller = ScarecrowController(machine)
    target = controller.launch(sample.image_path)
    result = sample.run(machine, target)
    print(f"with Scarecrow:    payload ran={result.executed_payload}, "
          f"trigger={result.trigger}")
    assert not result.executed_payload
    assert machine.filesystem.exists(
        "C:\\Users\\user\\Documents\\thesis.docx")  # intact!

    trigger = controller.first_trigger()
    print(f"deception engine reported: {trigger.category} probe via "
          f"{trigger.trigger_name} on {trigger.resource!r}")


if __name__ == "__main__":
    main()
