"""E3 — regenerate Table II (Pafish × 3 environments × w//w/o Scarecrow).

Run: ``pytest benchmarks/bench_table2.py --benchmark-only -s``
"""

from repro.experiments import (matches_paper, render_table2, run_table2)


def test_bench_table2(benchmark):
    cells = benchmark.pedantic(run_table2, rounds=3, iterations=1)
    print("\n" + render_table2(cells))
    assert matches_paper(cells)   # every one of the 66 cells
