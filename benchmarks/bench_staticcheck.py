"""E16 — scarelint full-tree wall time (the `repro lint src/` gate).

The lint gate runs inside the tier-1 suite, so its cost is paid on every
test invocation; this benchmark pins it down. It measures

* a cold serial full-tree run (empty parse cache, all eight rules
  including the whole-program call-graph passes, baseline applied),
* a warm re-run (parse cache hot — the re-lint-after-edit case), and
* a pooled run at two workers through the ``repro.parallel`` engine,

asserts the tree is lint-clean and the cold run stays inside an
interactive budget, and writes ``BENCH_staticcheck.json`` next to the
repo root.

Run: ``pytest benchmarks/bench_staticcheck.py --benchmark-only -s``
"""

import json
import os
import pathlib

from repro.staticcheck import PARSE_CACHE, load_or_empty, run_lint

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_staticcheck.json"
ROUNDS = 3


def _lint_src(jobs=1):
    """One full-tree lint from the repo root (baseline keys are relative)."""
    cwd = os.getcwd()
    os.chdir(ROOT)
    try:
        baseline = load_or_empty(".scarelint-baseline.json")
        return run_lint(["src"], jobs=jobs, baseline=baseline)
    finally:
        os.chdir(cwd)


def _best_of(fn, rounds=ROUNDS):
    best = None
    for _ in range(rounds):
        candidate = fn()
        if best is None or candidate.wall_time_s < best.wall_time_s:
            best = candidate
    return best


def test_bench_staticcheck_full_tree(benchmark):
    PARSE_CACHE.clear()
    cold = benchmark.pedantic(_lint_src, rounds=1, iterations=1)
    warm = _best_of(_lint_src, rounds=ROUNDS)
    pooled = _best_of(lambda: _lint_src(jobs=2), rounds=1)
    cold_s, warm_s, pooled_s = (cold.wall_time_s, warm.wall_time_s,
                                pooled.wall_time_s)

    # The gate itself: zero unbaselined findings, no stale suppressions.
    for report in (cold, warm, pooled):
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.stale_suppressions == []
    assert cold.files_scanned == warm.files_scanned == pooled.files_scanned
    assert warm.suppressed == cold.suppressed

    # Interactive budget: the whole tree in well under ten seconds.
    assert cold_s < 10.0, f"cold full-tree lint took {cold_s:.2f}s"
    # The warm run skips every parse; it must not be slower than cold.
    assert warm_s <= cold_s * 1.5

    per_file_ms = 1000.0 * cold_s / max(1, cold.files_scanned)
    payload = {
        "benchmark": "staticcheck_full_tree",
        "files_scanned": cold.files_scanned,
        "suppressed": len(cold.suppressed),
        "cold_wall_s": round(cold_s, 4),
        "warm_wall_s": round(warm_s, 4),
        "pooled2_wall_s": round(pooled_s, 4),
        "cold_per_file_ms": round(per_file_ms, 3),
        "rule_ns": {rule: ns for rule, ns in sorted(cold.rule_ns.items())},
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"\nwrote {OUTPUT.name}: {cold.files_scanned} files "
          f"cold={cold_s * 1000:.0f}ms warm={warm_s * 1000:.0f}ms "
          f"pooled(2)={pooled_s * 1000:.0f}ms "
          f"({per_file_ms:.1f}ms/file cold)")
