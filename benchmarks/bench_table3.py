"""E4 — regenerate Table III (wear-and-tear artifacts faked by Scarecrow).

Run: ``pytest benchmarks/bench_table3.py --benchmark-only -s``
"""

from repro.experiments import render_table3, run_table3


def test_bench_table3(benchmark):
    result = benchmark.pedantic(run_table3, rounds=3, iterations=1)
    print("\n" + render_table3(result))
    assert result.verdict_without.label == "real"
    assert result.verdict_with.label == "sandbox"
    assert result.verdict_sandbox.label == "sandbox"
    assert result.faked_value("dnscacheEntries") == 4
    assert result.faked_value("sysevt") == 8000
    assert result.faked_value("deviceClsCount") == 29
    assert result.faked_value("autoRunCount") == 3
    assert result.faked_value("regSize") == 53 * 1024 * 1024
