"""E8 — the "negligible performance overhead" claim (Section III).

Measures hooked-vs-unhooked API call latency inside the simulation, plus
deception-engine lookup throughput. Absolute numbers are simulation costs,
not silicon; the claim under test is the *relative* overhead of routing a
call through Scarecrow's hook chain.

Run: ``pytest benchmarks/bench_overhead.py --benchmark-only``
"""

import pytest

from repro import winapi
from repro.core import DeceptionDatabase, ScarecrowController
from repro.winsim import Machine


@pytest.fixture
def unhooked_api():
    machine = Machine().boot()
    process = machine.spawn_process("plain.exe", parent=machine.explorer)
    api = winapi.bind(machine, process)
    api.quiet = True
    return api


@pytest.fixture
def hooked_api():
    machine = Machine().boot()
    controller = ScarecrowController(machine)
    target = controller.launch("C:\\dl\\bench.exe")
    api = winapi.bind(machine, target)
    api.quiet = True
    return api


def test_bench_unhooked_registry_open(benchmark, unhooked_api):
    benchmark(unhooked_api.RegOpenKeyExA, "HKEY_LOCAL_MACHINE",
              "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion")


def test_bench_hooked_registry_open_passthrough(benchmark, hooked_api):
    """Hooked, but the key is not deceptive -> full passthrough path."""
    benchmark(hooked_api.RegOpenKeyExA, "HKEY_LOCAL_MACHINE",
              "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion")


def test_bench_hooked_registry_open_deceptive(benchmark, hooked_api):
    """Hooked and deceptive -> key materialization path."""
    benchmark(hooked_api.RegOpenKeyExA, "HKEY_LOCAL_MACHINE",
              "SOFTWARE\\Oracle\\VirtualBox Guest Additions")


def test_bench_unhooked_is_debugger_present(benchmark, unhooked_api):
    benchmark(unhooked_api.IsDebuggerPresent)


def test_bench_hooked_is_debugger_present(benchmark, hooked_api):
    benchmark(hooked_api.IsDebuggerPresent)


def test_bench_unhooked_file_query(benchmark, unhooked_api):
    benchmark(unhooked_api.GetFileAttributesA, "C:\\Windows\\System32")


def test_bench_hooked_file_query(benchmark, hooked_api):
    benchmark(hooked_api.GetFileAttributesA, "C:\\Windows\\System32")


def test_bench_database_file_lookup(benchmark):
    db = DeceptionDatabase()
    benchmark(db.lookup_file,
              "C:\\Windows\\System32\\drivers\\vmmouse.sys")


def test_bench_database_registry_lookup(benchmark):
    db = DeceptionDatabase()
    benchmark(db.lookup_registry_key,
              "HKEY_LOCAL_MACHINE\\SOFTWARE\\Oracle\\"
              "VirtualBox Guest Additions")


def test_bench_controller_launch_inject(benchmark):
    """Full protect-a-process cost: spawn + inject + ~40 hook installs."""

    def launch_once():
        machine = Machine().boot()
        controller = ScarecrowController(machine)
        return controller.launch("C:\\dl\\target.exe")

    target = benchmark(launch_once)
    assert target.tags["scarecrow_hooks_installed"] >= 29


def test_relative_overhead_is_modest(unhooked_api, hooked_api):
    """The headline assertion: hook routing costs < 5x on passthrough."""
    import timeit
    unhooked = timeit.timeit(
        lambda: unhooked_api.GetFileAttributesA("C:\\Windows\\System32"),
        number=2000)
    hooked = timeit.timeit(
        lambda: hooked_api.GetFileAttributesA("C:\\Windows\\System32"),
        number=2000)
    assert hooked < unhooked * 5, (hooked, unhooked)
