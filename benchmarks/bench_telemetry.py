"""E15 — telemetry layer overhead on the winapi dispatch hot path.

The telemetry layer's contract is that it is effectively free when
disabled: each instrumented site pays at most two ``TELEMETRY.enabled``
attribute reads per API call. This benchmark measures

* per-call dispatch cost with telemetry disabled (the tier-1 default),
* the raw cost of the enabled-flag guard itself (x2, the worst case a
  call can see), and
* per-call dispatch cost with telemetry enabled (counters + histogram),

asserts the guard stays under 10% of the disabled dispatch cost, and
writes ``BENCH_telemetry.json`` next to the repo root.

Run: ``pytest benchmarks/bench_telemetry.py --benchmark-only -s``
"""

import json
import pathlib
import time

from repro import winapi
from repro.core import ScarecrowController
from repro.telemetry.metrics import TELEMETRY
from repro.winsim.machine import Machine

ITERATIONS = 20_000
ROUNDS = 3
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_telemetry.json"


def _bare_api():
    machine = Machine().boot()
    process = machine.spawn_process("bench.exe", parent=machine.explorer)
    api = winapi.bind(machine, process)
    api.quiet = True
    return api


def _hooked_api():
    machine = Machine().boot()
    target = ScarecrowController(machine).launch("C:\\dl\\bench.exe")
    api = winapi.bind(machine, target)
    api.quiet = True
    return api


def _dispatch_ns(api, iterations=ITERATIONS, rounds=ROUNDS):
    """Best-of-N per-call dispatch cost of IsDebuggerPresent, in ns."""
    best = None
    for _ in range(rounds):
        start = time.perf_counter_ns()
        for _ in range(iterations):
            api.IsDebuggerPresent()
        elapsed = (time.perf_counter_ns() - start) / iterations
        best = elapsed if best is None else min(best, elapsed)
        api.call_log.clear()
    return best


def _guard_ns(iterations=ITERATIONS * 10, rounds=ROUNDS):
    """Best-of-N cost of one disabled-path guard (attribute read + branch)."""
    registry = TELEMETRY
    best = None
    for _ in range(rounds):
        start = time.perf_counter_ns()
        for _ in range(iterations):
            if registry.enabled:
                raise AssertionError("registry must stay disabled here")
        elapsed = (time.perf_counter_ns() - start) / iterations
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_bench_telemetry_overhead(benchmark):
    prior = TELEMETRY.enabled
    TELEMETRY.disable()
    try:
        bare = _bare_api()
        hooked = _hooked_api()

        disabled_ns = benchmark.pedantic(_dispatch_ns, args=(bare,),
                                         rounds=1, iterations=1)
        disabled_hooked_ns = _dispatch_ns(hooked)
        guard_ns = _guard_ns()

        TELEMETRY.reset()
        TELEMETRY.enable()
        enabled_ns = _dispatch_ns(bare)
        enabled_hooked_ns = _dispatch_ns(hooked)
        recorded = TELEMETRY.snapshot()
    finally:
        TELEMETRY.reset()
        TELEMETRY.enabled = prior

    # The enabled run actually recorded through the hot path.
    assert recorded.counters["api.calls"] > 0
    assert any(name.startswith("api.latency_ns.")
               for name in recorded.histograms)

    # Acceptance: disabled telemetry costs < 10% of dispatch. Each call
    # pays at most two guard reads (api dispatch + hook layer).
    guard_share = 2 * guard_ns / disabled_ns
    assert guard_share < 0.10, \
        f"disabled guard is {guard_share:.1%} of dispatch " \
        f"({guard_ns:.0f}ns guard vs {disabled_ns:.0f}ns call)"

    # Enabled-mode accounting stays the same order of magnitude.
    assert enabled_ns / disabled_ns < 5.0
    assert enabled_hooked_ns / disabled_hooked_ns < 5.0

    payload = {
        "benchmark": "telemetry_dispatch_overhead",
        "iterations": ITERATIONS,
        "disabled_dispatch_ns": round(disabled_ns, 1),
        "disabled_hooked_dispatch_ns": round(disabled_hooked_ns, 1),
        "guard_ns": round(guard_ns, 2),
        "guard_share_of_dispatch": round(guard_share, 4),
        "enabled_dispatch_ns": round(enabled_ns, 1),
        "enabled_hooked_dispatch_ns": round(enabled_hooked_ns, 1),
        "enabled_over_disabled": round(enabled_ns / disabled_ns, 3),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"\nwrote {OUTPUT.name}: disabled={disabled_ns:.0f}ns "
          f"guard x2={2 * guard_ns:.0f}ns ({guard_share:.1%}) "
          f"enabled={enabled_ns:.0f}ns")
