"""E1 — regenerate Table I (Joe Security, 13 samples, w/ vs w/o Scarecrow).

Run: ``pytest benchmarks/bench_table1.py --benchmark-only -s``
"""

from repro.experiments import (effectiveness_count, render_table1,
                               run_table1)


def test_bench_table1(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    print("\n" + render_table1(rows))
    assert len(rows) == 13
    assert effectiveness_count(rows) == 12      # paper: 12/13
    assert all(row.matches_paper for row in rows)
