"""The §II-C learning loop at scale: MalGene signature extraction.

Runs a slice of anti-VM samples in two analysis environments (evading in
the VirtualBox guest, detonating on bare metal), aligns every trace pair,
extracts evasion signatures, and feeds them into a *curated-free* database
to measure how much of the deception inventory the loop can rediscover on
its own.

Run: ``pytest benchmarks/bench_malgene.py --benchmark-only -s``
"""

from repro.analysis.agent import run_sample
from repro.analysis.environments import (build_bare_metal_sandbox,
                                         build_cuckoo_vm_sandbox)
from repro.analysis.malgene import extract_evasion_signature, learn_signature
from repro.core import DeceptionDatabase
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec


def _anti_vm_slice():
    spec = FamilySpec("Learner", (("term_vm", 12), ("sleep_sbx", 5)))
    return build_malgene_corpus([spec])


def test_bench_malgene_learning_loop(benchmark):
    samples = _anti_vm_slice()

    def sweep():
        signatures = []
        for sample in samples:
            evaded = run_sample(build_cuckoo_vm_sandbox(), sample,
                                with_scarecrow=False)
            detonated = run_sample(build_bare_metal_sandbox(aged=False),
                                   sample, with_scarecrow=False)
            # Only samples that actually diverged produce a signature
            # (sandbox-check samples detonate in both analysis envs).
            if evaded.result.executed_payload != \
                    detonated.result.executed_payload:
                signature = extract_evasion_signature(evaded.trace,
                                                      detonated.trace)
                if signature is not None:
                    signatures.append(signature)
        return signatures

    signatures = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Every VM-gated sample that behaved differently yielded a signature.
    assert len(signatures) >= 10
    # Registry/file signatures are auto-learnable; process-list signatures
    # (a vm_processes sample diverging on EnumProcesses) identify the
    # resource but need the curated process deception, not a DB entry.
    assert all(s.category in ("registry", "file", "process")
               for s in signatures)

    # Feed them into an empty-ish database: the loop rediscovers the
    # curated anti-VM resources (paper: "continuously learn new deceptive
    # resources"). Duplicates collapse.
    db = DeceptionDatabase()
    outcomes = [learn_signature(db, s) for s in signatures]
    learned = sum(outcomes)
    rediscovered = len(outcomes) - learned
    print(f"\nsignatures={len(signatures)} newly-learned={learned} "
          f"already-known-or-duplicate={rediscovered}")
    assert learned + rediscovered == len(signatures)
    assert rediscovered > 0  # duplicates across samples collapsed
