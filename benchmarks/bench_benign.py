"""E7 — benign-impact sweep: the top-20 CNET corpus under Scarecrow.

Run: ``pytest benchmarks/bench_benign.py --benchmark-only -s``
"""

from repro.analysis.environments import build_end_user_machine
from repro.core import ScarecrowConfig, ScarecrowController
from repro.experiments.report import render_table
from repro.malware.benign import build_cnet_corpus


def _sweep():
    reports = []
    for program in build_cnet_corpus():
        bare_machine = build_end_user_machine()
        bare_proc = bare_machine.spawn_process(
            program.spec.exe_name, program.image_path,
            parent=bare_machine.explorer)
        bare = program.run(bare_machine, bare_proc)

        protected_machine = build_end_user_machine()
        controller = ScarecrowController(
            protected_machine,
            config=ScarecrowConfig(enable_username=False))
        target = controller.launch(program.image_path)
        protected = program.run(protected_machine, target)
        reports.append((program.spec.name, bare, protected))
    return reports


def test_bench_benign_corpus(benchmark):
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [(name,
             "ok" if bare.installed else bare.error,
             "ok" if protected.installed else protected.error,
             "identical" if bare.fingerprint == protected.fingerprint
             else "DIVERGED")
            for name, bare, protected in reports]
    print("\n" + render_table(
        ("Program", "Bare", "Under SCARECROW", "Behaviour"),
        rows, title="Benign impact (B_CNET, 20 programs)"))
    assert len(reports) == 20
    for name, bare, protected in reports:
        assert protected.installed and protected.ran, name
        assert bare.fingerprint == protected.fingerprint, name
