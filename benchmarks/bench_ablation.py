"""Ablation — which deception groups carry the deactivation rate.

Disables one deception group at a time and re-runs a stratified 106-sample
slice of the MalGene corpus (every 10th sample), reporting the deactivation
rate per configuration. The design claims this probes: debugger deception
dominates (most samples lead with IsDebuggerPresent), software/registry
deception covers the anti-VM tail, and no single remaining group rescues
the PEB/CPUID failures.

Run: ``pytest benchmarks/bench_ablation.py --benchmark-only -s``
"""

from repro.analysis.environments import build_bare_metal_sandbox
from repro.core import ScarecrowConfig
from repro.experiments.report import render_table
from repro.experiments.runner import run_pairs
from repro.malware.corpus import build_malgene_corpus

CONFIGS = (
    ("full", ScarecrowConfig()),
    ("no debugger deception", ScarecrowConfig(enable_debugger=False)),
    ("no software deception", ScarecrowConfig(enable_software=False)),
    ("no hardware deception", ScarecrowConfig(enable_hardware=False)),
    ("no network deception", ScarecrowConfig(enable_network=False)),
    ("no timing deception", ScarecrowConfig(enable_timing=False)),
)


def _slice():
    return build_malgene_corpus()[::10]   # 106 samples, all archetypes


def _factory():
    return build_bare_metal_sandbox(aged=False)


def _rate(samples, config):
    outcomes = run_pairs(samples, machine_factory=_factory, config=config)
    deactivated = sum(1 for o in outcomes if o.comparison.deactivated)
    return deactivated / len(outcomes)


def test_bench_ablation(benchmark):
    samples = _slice()

    def sweep():
        return [(label, _rate(samples, config))
                for label, config in CONFIGS]

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_table(
        ("Configuration", "Deactivation rate"),
        [(label, f"{rate:.1%}") for label, rate in rates],
        title=f"Ablation over {len(samples)} stratified samples"))
    by_label = dict(rates)
    full = by_label["full"]
    assert full > 0.8
    # Debugger deception carries the self-spawner mass.
    assert by_label["no debugger deception"] < full - 0.3
    # Software deception carries the anti-VM/anti-sandbox tail.
    assert by_label["no software deception"] < full
    # Each single remaining group still leaves most coverage intact.
    for label in ("no hardware deception", "no network deception",
                  "no timing deception"):
        assert by_label[label] >= full - 0.15, label
