"""E18 — dbops: version publish latency and rollout routing overhead.

Two questions an operator cares about before trusting ``repro.dbops``
in the loop (docs/DBOPS.md):

* **Publish cost** — how long does one collect→diff→extend→publish
  cycle take, and how long does rehydrating a published version back
  into a frozen database take? Both are measured over an in-memory and
  an on-disk :class:`~repro.dbops.versions.VersionStore`.
* **Routing overhead** — what does an *active* version router cost a
  fleet run? Three passes over the same seeded workload: routerless
  (reference), a no-op rollout (target content-identical to base —
  must be byte-identical output, so only the router bookkeeping is
  paid), and a live rollout stamping a real target version.

The no-op pass doubles as the determinism gate: its canonical rollup is
asserted byte-equal to the routerless reference, mirroring the
hypothesis property in ``tests/dbops/test_rollout_properties.py``.
Numbers land in ``BENCH_dbops.json`` at the repo root.

Run: ``pytest benchmarks/bench_dbops.py --benchmark-only -s``
"""

import json
import os
import pathlib
import time

from repro.core import DeceptionDatabase
from repro.dbops import (CollectorPipeline, HealthGate, RolloutEngine,
                         VersionStore)
from repro.fleet import FleetService, build_fleet_report

ENDPOINTS = 8
EVENTS = 96
SEED = 42
FACTORY = "bare-metal-light"
COLLECT_CYCLES = 12
COLLECT_SEED = 2026
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_dbops.json"


def _collect_pass(root=None):
    """Run the collector loop against one store; returns its section."""
    store = VersionStore(root)
    pipeline = CollectorPipeline(store, database=DeceptionDatabase(),
                                 seed=COLLECT_SEED)
    start = time.perf_counter()
    results = pipeline.run(COLLECT_CYCLES)
    wall_s = time.perf_counter() - start
    published = [r for r in results if r.published is not None]
    assert published, "collect pass must publish at least one version"

    rehydrate_start = time.perf_counter()
    for version in store.versions():
        store.load_database(version.version_id)
    rehydrate_s = time.perf_counter() - rehydrate_start
    return store, {
        "backing": "memory" if root is None else "disk",
        "cycles": COLLECT_CYCLES,
        "published": len(published),
        "skipped": COLLECT_CYCLES - len(published),
        "wall_time_s": round(wall_s, 4),
        "cycles_per_sec": round(COLLECT_CYCLES / wall_s, 1),
        "mean_publish_ms": round(wall_s / len(published) * 1e3, 3),
        "rehydrate_all_ms": round(rehydrate_s * 1e3, 3),
    }


def _fleet_pass(router=None):
    service = FleetService(endpoints=ENDPOINTS, events=EVENTS, seed=SEED,
                           queue_limit=16, machine_factory=FACTORY,
                           version_router=router)
    start = time.perf_counter()
    result = service.run()
    wall_s = time.perf_counter() - start
    assert result.completed
    return result, build_fleet_report(result).to_json(), wall_s


def test_bench_dbops(benchmark, tmp_path):
    memory_store, memory_section = _collect_pass()
    _, disk_section = _collect_pass(str(tmp_path / "store"))

    # Routerless reference — also the byte-identity baseline.
    _, reference_rollup, reference_s = benchmark.pedantic(
        _fleet_pass, rounds=1, iterations=1)

    # No-op rollout: pay the router bookkeeping, move zero bytes.
    noop_store = VersionStore()
    noop_store.publish(DeceptionDatabase(), label="identical")
    noop_engine = RolloutEngine.from_store(noop_store, 1,
                                           health=HealthGate())
    noop_result, noop_rollup, noop_s = _fleet_pass(noop_engine)
    assert noop_rollup == reference_rollup
    assert noop_result.dbops["noop"] is True
    assert noop_result.dbops["stamped_batches"] == 0

    # Live rollout: a real collected target, stamped and side-loaded.
    target = memory_store.latest().version_id
    live_engine = RolloutEngine.from_store(memory_store, target,
                                           health=HealthGate())
    live_result, _, live_s = _fleet_pass(live_engine)
    assert live_result.dbops["rolled_back"] is False
    assert live_result.dbops["stamped_batches"] > 0

    def _mode(mode, wall_s, stamped):
        return {"mode": mode, "wall_time_s": round(wall_s, 4),
                "events_per_sec": round(EVENTS / wall_s, 1),
                "overhead_vs_reference": round(wall_s / reference_s, 3),
                "stamped_batches": stamped}

    payload = {
        "benchmark": "dbops_pipeline_and_rollout",
        "endpoints": ENDPOINTS,
        "events": EVENTS,
        "seed": SEED,
        "machine_factory": FACTORY,
        "cpu_cores": os.cpu_count(),
        "noop_rollup_byte_identical": True,
        "collect": [memory_section, disk_section],
        "reference": "routerless fleet run",
        "measurements": [
            _mode("routerless", reference_s, 0),
            _mode("noop-rollout", noop_s, 0),
            _mode("live-rollout", live_s,
                  live_result.dbops["stamped_batches"]),
        ],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"\nwrote {OUTPUT}")
    for line in payload["measurements"]:
        print(f"  {line['mode']:<14} {line['wall_time_s']:>8.3f}s  "
              f"x{line['overhead_vs_reference']}")
