"""E9 — the Section II-C collection pipeline and its exact counts.

Run: ``pytest benchmarks/bench_collector.py --benchmark-only``
"""

from repro.analysis.environments import (build_clean_baseline,
                                         build_public_sandboxes)
from repro.core import DeceptionDatabase, collect_from_public_sandboxes


def test_bench_collector_pipeline(benchmark):
    def pipeline():
        db = DeceptionDatabase()
        counts = collect_from_public_sandboxes(
            db, build_public_sandboxes(), build_clean_baseline())
        return db, counts

    db, counts = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    # "17,540 files, 24 processes, and 1,457 registry entries are added"
    assert counts == {"files": 17540, "processes": 24,
                      "registry_entries": 1457}
    assert db.counts()["files"] >= 17540
