"""Baseline comparison — Scarecrow vs AutoVac-style vaccination.

Quantifies the paper's related-work argument (§VII-C) over two sample
populations: environment-fingerprinting malware (a 106-sample stratified
MalGene slice) and marker-guarded malware (the vaccine corpus, pure and
hybrid variants).

Run: ``pytest benchmarks/bench_vaccine_baseline.py --benchmark-only -s``
"""

from repro.analysis.environments import build_bare_metal_sandbox
from repro.core import (ScarecrowController, VaccinationAgent,
                        build_marker_gated_corpus)
from repro.experiments.report import render_table
from repro.experiments.runner import run_pairs
from repro.malware.corpus import build_malgene_corpus


def _fresh():
    return build_bare_metal_sandbox(aged=False)


def _rate_env_corpus_scarecrow(samples):
    outcomes = run_pairs(samples, machine_factory=_fresh)
    return sum(o.comparison.deactivated for o in outcomes) / len(outcomes)


def _rate_env_corpus_vaccine(samples):
    stopped = 0
    for sample in samples:
        machine = _fresh()
        VaccinationAgent().inoculate(machine)
        process = machine.spawn_process(sample.exe_name, sample.image_path,
                                        parent=machine.explorer)
        if not sample.run(machine, process).executed_payload:
            stopped += 1
    return stopped / len(samples)


def _rate_marker_corpus(samples, defense):
    stopped = 0
    for sample in samples:
        machine = _fresh()
        if defense == "vaccine":
            VaccinationAgent().inoculate(machine)
            process = machine.spawn_process(
                sample.exe_name, sample.image_path, parent=machine.explorer)
        else:
            controller = ScarecrowController(machine)
            process = controller.launch(sample.image_path)
        if not sample.run(machine, process).executed_payload:
            stopped += 1
    return stopped / len(samples)


def test_bench_scarecrow_vs_vaccination(benchmark):
    env_corpus = build_malgene_corpus()[::10]
    marker_corpus = build_marker_gated_corpus()
    pure = [s for s in marker_corpus if "pure" in s.exe_name]
    hybrid = [s for s in marker_corpus if "hybrid" in s.exe_name]

    def sweep():
        return {
            ("env-fingerprinting", "Scarecrow"):
                _rate_env_corpus_scarecrow(env_corpus),
            ("env-fingerprinting", "Vaccination"):
                _rate_env_corpus_vaccine(env_corpus),
            ("marker-guarded (pure)", "Scarecrow"):
                _rate_marker_corpus(pure, "scarecrow"),
            ("marker-guarded (pure)", "Vaccination"):
                _rate_marker_corpus(pure, "vaccine"),
            ("marker-guarded (hybrid)", "Scarecrow"):
                _rate_marker_corpus(hybrid, "scarecrow"),
            ("marker-guarded (hybrid)", "Vaccination"):
                _rate_marker_corpus(hybrid, "vaccine"),
        }

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = sorted((pop, defense, f"{rate:.0%}")
                  for (pop, defense), rate in rates.items())
    print("\n" + render_table(("Population", "Defense", "Deactivation"),
                              rows, title="Scarecrow vs vaccination"))

    # The §VII-C trade-off, asserted:
    assert rates[("env-fingerprinting", "Scarecrow")] > 0.8
    assert rates[("env-fingerprinting", "Vaccination")] == 0.0
    assert rates[("marker-guarded (pure)", "Vaccination")] == 1.0
    assert rates[("marker-guarded (pure)", "Scarecrow")] == 0.0
    # Hybrids fall to either defense.
    assert rates[("marker-guarded (hybrid)", "Scarecrow")] == 1.0
    assert rates[("marker-guarded (hybrid)", "Vaccination")] == 1.0
