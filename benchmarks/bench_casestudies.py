"""E5/E6 — regenerate the Section V case studies.

Run: ``pytest benchmarks/bench_casestudies.py --benchmark-only -s``
"""

from repro.experiments import (render_case1, render_case2, run_case1,
                               run_case2)


def test_bench_case1_kasidet(benchmark):
    result = benchmark.pedantic(run_case1, rounds=3, iterations=1)
    print("\n" + render_case1(result))
    assert result.case.deactivated
    assert result.disjunction_size > 10
    assert result.single_predicate_sufficed


def test_bench_case2_ransomware(benchmark):
    results = benchmark.pedantic(run_case2, rounds=3, iterations=1)
    print("\n" + render_case2(results))
    by_name = {r.sample_name: r for r in results}
    assert by_name["WannaCry variant"].deactivated
    assert by_name["WannaCry variant"].files_encrypted_with == 0
    assert by_name["WannaCry variant"].files_encrypted_without > 0
    assert not by_name["WannaCry original"].deactivated  # out of scope
    assert by_name["Locky"].deactivated
    assert by_name["Cerber variant"].deactivated
