"""E2 — regenerate Figure 4 and the §IV-C.1 headline numbers.

Runs the full 1,054-sample MalGene corpus with and without Scarecrow.
Run: ``pytest benchmarks/bench_figure4.py --benchmark-only -s``
"""

import pytest

from repro.experiments import (PAPER_DEACTIVATED, PAPER_SELF_SPAWNING,
                               PAPER_SELF_SPAWNING_IDP, PAPER_SYMMI,
                               PAPER_TOTAL, render_figure4, run_figure4)


def test_bench_figure4_full_corpus(benchmark):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    print("\n" + render_figure4(result))

    summary = result.summary
    assert summary.total == PAPER_TOTAL == 1054
    assert summary.deactivated == PAPER_DEACTIVATED == 944
    assert summary.deactivation_rate == pytest.approx(0.8956, abs=0.0005)
    assert summary.self_spawning == PAPER_SELF_SPAWNING == 823
    assert summary.self_spawning_using_idp == PAPER_SELF_SPAWNING_IDP == 815

    symmi = result.families["Symmi"]
    assert symmi.total == PAPER_SYMMI["total"]
    assert symmi.deactivated == PAPER_SYMMI["deactivated"]
    assert symmi.self_spawning == PAPER_SYMMI["self_spawning"]
    assert symmi.created_processes_without == \
        PAPER_SYMMI["created_processes"]
    assert symmi.modified_files_registry_without == \
        PAPER_SYMMI["modified_files_registry"]

    # Selfdel is the one family where effectiveness is undeterminable.
    assert result.families["Selfdel"].deactivated == 0
