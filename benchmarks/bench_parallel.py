"""E9 — parallel sweep engine: determinism at scale plus worker scaling.

Runs a 32-sample corpus serially and on process pools of 2 and 4 workers,
checks the verdicts are identical everywhere, and emits the measurements
as ``BENCH_parallel.json`` next to the repo root. The >=2x-at-4-workers
speedup assertion only applies on machines with at least 4 CPU cores —
a single-core container cannot exhibit parallel speedup, but it still
exercises (and verifies) the real process-pool path.

Run: ``pytest benchmarks/bench_parallel.py --benchmark-only -s``
"""

import json
import os
import pathlib

from repro.analysis.comparison import summarize
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel import ParallelSweep, fork_available

#: 32 samples over the five headline archetypes.
BENCH_SPEC = FamilySpec("Bench", (("spawn_idp", 12), ("term_vm", 8),
                                  ("sleep_sbx", 6), ("fail_peb", 4),
                                  ("selfdel", 2)))
WORKER_COUNTS = (1, 2, 4)
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_parallel.json"


def _run(samples, workers):
    return ParallelSweep(max_workers=workers,
                         machine_factory="bare-metal-light").run(samples)


def test_bench_parallel_scaling(benchmark):
    samples = build_malgene_corpus([BENCH_SPEC])
    assert len(samples) == 32

    serial = benchmark.pedantic(_run, args=(samples, 1),
                                rounds=1, iterations=1)
    assert not serial.errors
    results = {1: serial}
    for workers in WORKER_COUNTS[1:]:
        if not fork_available():
            continue
        results[workers] = _run(samples, workers)
        assert results[workers].used_process_pool
        assert not results[workers].errors
        # The engine's core guarantee: verdicts identical to serial.
        assert results[workers].comparisons == serial.comparisons

    summary = summarize(serial.comparisons)
    assert summary.total == 32
    assert summary.deactivated == BENCH_SPEC.expected_deactivated()

    measurements = [
        {"workers": workers, "wall_time_s": round(result.wall_time_s, 4),
         "speedup": round(serial.wall_time_s / result.wall_time_s, 3),
         "used_process_pool": result.used_process_pool}
        for workers, result in sorted(results.items())]
    payload = {
        "benchmark": "parallel_sweep_scaling",
        "corpus_size": len(samples),
        "cpu_cores": os.cpu_count(),
        "fork_available": fork_available(),
        "deactivated": summary.deactivated,
        "measurements": measurements,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"\nwrote {OUTPUT.name}: " +
          ", ".join(f"{m['workers']}w={m['wall_time_s']}s"
                    f" ({m['speedup']}x)" for m in measurements))

    cores = os.cpu_count() or 1
    if cores >= 4 and fork_available():
        by_workers = {m["workers"]: m for m in measurements}
        assert by_workers[4]["speedup"] >= 2.0, \
            "4-worker pool should be at least 2x faster than serial"
