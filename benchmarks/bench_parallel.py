"""E9 — parallel sweep engine: templating + chunked dispatch payoff.

Runs a 32-sample corpus through four execution modes on the *default*
(full ``bare-metal``) factory:

* ``serial-fresh`` — 1 worker, a fresh machine per run (the PR-1
  behaviour, and the **speedup reference**: the cost the engine has to
  beat);
* ``serial-templated`` — 1 worker, one machine rewound between runs;
* ``pooled-templated`` — 2- and 4-worker pools, each worker templating
  its own machine, jobs shipped in auto-sized chunks. These run the
  full zero-copy path: fork-shared database/template bring-up,
  dirty-set delta-restore between jobs, framed binary chunk envelopes
  on the return pipe;
* ``pooled-full-restore`` — the 2-worker pool with ``delta=False``,
  isolating what dirty-set restores are worth.

Every mode must produce byte-identical pickled outcomes; the measurements
(plus per-phase wall-clock timings from a telemetry-enabled pass) land in
``BENCH_parallel.json`` at the repo root. Templating is what makes the
pool pay off: even on a single-core container, 2 pooled workers beat the
fresh-factory serial path because 64 machine builds collapse into a
handful of builds plus cheap in-place restores.

Run: ``pytest benchmarks/bench_parallel.py --benchmark-only -s``
"""

import json
import os
import pathlib
import pickle

from repro.analysis.comparison import summarize
from repro.malware.corpus import build_malgene_corpus
from repro.malware.families import FamilySpec
from repro.parallel import ParallelSweep, fork_available
from repro.telemetry.metrics import TELEMETRY

#: 32 samples over the five headline archetypes.
BENCH_SPEC = FamilySpec("Bench", (("spawn_idp", 12), ("term_vm", 8),
                                  ("sleep_sbx", 6), ("fail_peb", 4),
                                  ("selfdel", 2)))
POOL_WORKER_COUNTS = (2, 4)
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_parallel.json"

#: Host wall-clock phase histograms recorded by the worker layer.
PHASE_METRICS = ("wallclock.template_build_ns",
                 "wallclock.machine_setup_ns", "wallclock.job_ns",
                 "wallclock.delta_restore_ns")


def _run(samples, workers, template=True, delta=True):
    result = ParallelSweep(max_workers=workers, template=template,
                           delta=delta).run(samples)
    assert not result.errors, result.errors
    return result


def _phase_rows(samples):
    """Setup-vs-execute split from one telemetry-enabled templated pass."""
    before = TELEMETRY.snapshot()
    result = ParallelSweep(max_workers=1, template=True,
                           telemetry=True).run(samples)
    assert not result.errors, result.errors
    delta = TELEMETRY.snapshot().diff_from(before)
    rows = {}
    for name in PHASE_METRICS:
        state = delta.histograms.get(name)
        if state is None or not state.count:
            continue
        rows[name[len("wallclock."):]] = {
            "calls": state.count, "p50_ns": state.percentile(50),
            "mean_ms": round(state.mean / 1e6, 4)}
    return rows


def test_bench_parallel_scaling(benchmark):
    samples = build_malgene_corpus([BENCH_SPEC])
    assert len(samples) == 32

    # The reference: PR-1's fresh-machine-per-run serial path.
    reference = benchmark.pedantic(_run, args=(samples, 1),
                                   kwargs={"template": False},
                                   rounds=1, iterations=1)
    runs = [("serial-fresh", 1, reference),
            ("serial-templated", 1, _run(samples, 1))]
    for workers in POOL_WORKER_COUNTS:
        result = _run(samples, workers)
        assert result.used_process_pool
        runs.append(("pooled-templated", workers, result))
    full_restore = _run(samples, POOL_WORKER_COUNTS[0], delta=False)
    assert full_restore.used_process_pool
    runs.append(("pooled-full-restore", POOL_WORKER_COUNTS[0],
                 full_restore))

    # The engine's core guarantee: every mode, byte for byte.
    expected = pickle.dumps(reference.outcomes)
    for mode, workers, result in runs[1:]:
        assert pickle.dumps(result.outcomes) == expected, (mode, workers)
        assert pickle.dumps(result.canonical_entries()) == \
            pickle.dumps(reference.canonical_entries()), (mode, workers)

    summary = summarize(reference.comparisons)
    assert summary.total == 32
    assert summary.deactivated == BENCH_SPEC.expected_deactivated()

    measurements = [
        {"mode": mode, "workers": workers,
         "wall_time_s": round(result.wall_time_s, 4),
         "speedup": round(reference.wall_time_s / result.wall_time_s, 3),
         "used_process_pool": result.used_process_pool,
         "shared_state_used": result.shared_state_used,
         "delta_restores": result.delta_restores(),
         "full_restores": result.full_restores()}
        for mode, workers, result in runs]
    phases = _phase_rows(samples)
    payload = {
        "benchmark": "parallel_sweep_scaling",
        "corpus_size": len(samples),
        "machine_factory": "bare-metal",
        "cpu_cores": os.cpu_count(),
        "fork_available": fork_available(),
        "deactivated": summary.deactivated,
        "rollups_byte_identical": True,
        "delta_restore_mean_ms":
            phases.get("delta_restore_ns", {}).get("mean_ms"),
        "reference": "serial-fresh (1 worker, fresh machine per run)",
        "measurements": measurements,
        "phases": phases,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"\nwrote {OUTPUT.name}: " +
          ", ".join(f"{m['mode']}/{m['workers']}w={m['wall_time_s']}s"
                    f" ({m['speedup']}x)" for m in measurements))

    # Templating must carry the pool past the fresh serial path even on a
    # single core (machine builds collapse into restores); with >=4 cores
    # real parallelism should compound on top of that.
    pooled2 = next(m for m in measurements
                   if m["mode"] == "pooled-templated" and m["workers"] == 2)
    assert pooled2["speedup"] >= 1.0, \
        "2-worker templated pool should beat the fresh-factory serial path"
    if (os.cpu_count() or 1) >= 4 and fork_available():
        pooled4 = next(m for m in measurements
                       if m["mode"] == "pooled-templated"
                       and m["workers"] == 4)
        assert pooled4["speedup"] >= 2.0, \
            "4-worker pool should be at least 2x faster than serial-fresh"
