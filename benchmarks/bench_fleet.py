"""E17 — fleet protection service: events/sec serial vs pool, rollup parity.

Runs a 32-endpoint / 512-event fleet workload (`repro.fleet`, see
docs/FLEET.md) through four execution modes plus a kill-and-resume pass:

* ``serial-fresh`` — 1 worker, machines rebuilt from the factory per
  batch (the **throughput reference**: the cost templating has to beat);
* ``serial-templated`` — 1 worker, endpoints stamped from one
  :class:`~repro.parallel.template.MachineTemplate`;
* ``pooled-templated`` — 2- and 4-worker process pools on the full
  zero-copy path (fork-shared database/template, dirty-set
  delta-restore, binary chunk envelopes);
* ``checkpoint-resume`` — the pooled run killed after half its rounds,
  then resumed from the checkpoint file.

A second, larger pass (256 endpoints / 2048 events) sweeps the shard
count over ``{1, 2, 4}`` and lands under the ``"sharded"`` key: the
serial unsharded rollup is the reference and every sharded variant must
reproduce it byte-for-byte.  The sharded *speedup* assertion only fires
when ``os.cpu_count() >= 2`` — on a single-core container pipelined
shard dispatch cannot beat the serial loop and pretending otherwise
would be dishonest; byte-identity is asserted unconditionally.

Every mode must produce a byte-identical canonical rollup
(:meth:`~repro.fleet.FleetReport.to_json`) — the service's determinism
contract — and the resumed run must reproduce the uninterrupted rollup
exactly. Throughput (events/sec) per mode lands in ``BENCH_fleet.json``
at the repo root. Templating is what makes the pool pay off: even on a
single-core container the 4-worker pool clears 2x the fresh-factory
serial path because per-batch machine builds collapse into template
restores.

Run: ``pytest benchmarks/bench_fleet.py --benchmark-only -s``
"""

import json
import os
import pathlib
import time

from repro.fleet import FleetService, build_fleet_report
from repro.parallel import fork_available

ENDPOINTS = 32
EVENTS = 512
SEED = 1337
POOL_WORKER_COUNTS = (2, 4)
# The sharded sweep runs at fleet scale on the light factory so the
# whole benchmark stays inside a CI-friendly wall-time budget.
SHARD_ENDPOINTS = 256
SHARD_EVENTS = 2048
SHARD_FACTORY = "bare-metal-light"
SHARD_COUNTS = (1, 2, 4)
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_fleet.json"


def _run(workers=1, template=True, **kwargs):
    """One timed fleet run; returns (result, rollup, wall seconds)."""
    service = FleetService(endpoints=ENDPOINTS, events=EVENTS, seed=SEED,
                           max_workers=workers, template=template, **kwargs)
    start = time.perf_counter()
    result = service.run()
    wall_s = time.perf_counter() - start
    return result, build_fleet_report(result).to_json(), wall_s


def _restore_phase():
    """Per-checkout delta-restore cost on the end-user endpoint template,
    from one telemetry-enabled (untimed) serial pass."""
    result, _, _ = _run(telemetry=True)
    state = result.merged_metrics().histograms.get(
        "wallclock.delta_restore_ns")
    if state is None or not state.count:
        return None
    return {"calls": state.count, "p50_ns": state.percentile(50),
            "mean_ms": round(state.mean / 1e6, 4)}


def _resume_pass(tmp_path):
    """Kill a checkpointed run mid-stream, resume, return the rollup."""
    checkpoint = str(tmp_path / "bench-fleet.ckpt")
    partial = FleetService(endpoints=ENDPOINTS, events=EVENTS, seed=SEED,
                           max_workers=POOL_WORKER_COUNTS[-1],
                           checkpoint_path=checkpoint).run(
        stop_after_rounds=8)
    assert not partial.completed
    assert 0 < partial.rounds_done < partial.rounds_total
    start = time.perf_counter()
    resumed = FleetService(endpoints=ENDPOINTS, events=EVENTS, seed=SEED,
                           max_workers=POOL_WORKER_COUNTS[-1],
                           checkpoint_path=checkpoint, resume=True).run()
    wall_s = time.perf_counter() - start
    assert resumed.completed
    assert resumed.resumed_rounds == partial.rounds_done
    return resumed, build_fleet_report(resumed).to_json(), wall_s


def _sharded_sweep():
    """shards ∈ {1, 2, 4} at fleet scale; returns the payload section.

    The unsharded serial run is the throughput reference.  Byte-identity
    against it is asserted for every shard count here (unconditionally);
    the caller gates the speedup assertion on real core count.
    """
    measurements = []
    reference_rollup = None
    reference_rate = None
    for shards in SHARD_COUNTS:
        workers = min(shards, os.cpu_count() or 1)
        service = FleetService(endpoints=SHARD_ENDPOINTS,
                               events=SHARD_EVENTS, seed=SEED,
                               machine_factory=SHARD_FACTORY,
                               shards=shards, max_workers=workers)
        start = time.perf_counter()
        result = service.run()
        wall_s = time.perf_counter() - start
        rollup = build_fleet_report(result).to_json()
        if reference_rollup is None:
            reference_rollup, reference_rate = rollup, SHARD_EVENTS / wall_s
        # The tentpole contract: the shard count must never move a byte.
        assert rollup == reference_rollup, shards
        assert result.completed and result.shards == shards
        rate = SHARD_EVENTS / wall_s
        measurements.append({
            "shards": shards, "workers": workers,
            "wall_time_s": round(wall_s, 4),
            "events_per_sec": round(rate, 1),
            "speedup": round(rate / reference_rate, 3),
            "used_process_pool": result.used_process_pool,
            "shard_rounds": result.shard_rounds_total,
        })
    return {
        "endpoints": SHARD_ENDPOINTS,
        "events": SHARD_EVENTS,
        "machine_factory": SHARD_FACTORY,
        "rollups_byte_identical": True,
        "reference": "shards=1 (serial, templated)",
        "measurements": measurements,
    }


def test_bench_fleet_throughput(benchmark, tmp_path):
    # The reference: fresh factory build per endpoint batch, one process.
    reference = benchmark.pedantic(_run, kwargs={"template": False},
                                   rounds=1, iterations=1)
    runs = [("serial-fresh", 1, *reference),
            ("serial-templated", 1, *_run())]
    for workers in POOL_WORKER_COUNTS:
        result, rollup, wall_s = _run(workers=workers)
        assert result.used_process_pool
        runs.append(("pooled-templated", workers, result, rollup, wall_s))
    runs.append(("checkpoint-resume", POOL_WORKER_COUNTS[-1],
                 *_resume_pass(tmp_path)))

    # The service's core guarantee: one canonical rollup, every mode.
    _, _, _, expected_rollup, _ = runs[0]
    for mode, workers, result, rollup, _ in runs[1:]:
        assert rollup == expected_rollup, (mode, workers)
        assert result.completed, (mode, workers)

    report = build_fleet_report(runs[0][2])
    assert report.events_processed == EVENTS
    assert report.backpressure_stalls > 0  # the bounded queue did drain

    measurements = []
    reference_rate = EVENTS / runs[0][4]
    for mode, workers, result, _, wall_s in runs:
        # Rate counts only the events this run actually executed, so the
        # speedup is normalized by the resumed fraction and stays
        # meaningful for the checkpoint-resume pass (was: null).
        executed = len(result.records) - result.events_resumed
        rate = executed / wall_s
        measurements.append({
            "mode": mode, "workers": workers,
            "events_executed": executed,
            "wall_time_s": round(wall_s, 4),
            "events_per_sec": round(rate, 1),
            "speedup": round(rate / reference_rate, 3),
            "used_process_pool": result.used_process_pool,
            "shared_state_used": result.shared_state_used,
            "delta_restores": result.delta_restores(),
        })
    payload = {
        "benchmark": "fleet_service_throughput",
        "endpoints": ENDPOINTS,
        "events": EVENTS,
        "seed": SEED,
        "machine_factory": "end-user",
        "cpu_cores": os.cpu_count(),
        "fork_available": fork_available(),
        "rounds": report.rounds,
        "queue_depth_hwm": report.queue_depth_hwm,
        "backpressure_stalls": report.backpressure_stalls,
        "deactivation_rate": round(report.deactivation_rate, 4),
        "rollups_byte_identical": True,
        "delta_restore": _restore_phase(),
        "reference": "serial-fresh (1 worker, factory build per batch)",
        "measurements": measurements,
        "sharded": _sharded_sweep(),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    print(f"\nwrote {OUTPUT.name}: " +
          ", ".join(f"{m['mode']}/{m['workers']}w="
                    f"{m['events_per_sec']}ev/s" for m in measurements))

    # Templating must carry the pool past the fresh serial path even on a
    # single core; with real cores parallelism compounds on top.
    pooled4 = next(m for m in measurements
                   if m["mode"] == "pooled-templated" and m["workers"] == 4)
    assert pooled4["speedup"] >= 2.0, \
        "4-worker fleet pool should clear 2x the serial-fresh event rate"

    # Sharded speedup needs real parallel hardware: pipelined dispatch on
    # one core only adds routing overhead, so gate on the honest core
    # count recorded in the payload. Byte-identity was already asserted
    # inside _sharded_sweep(), cores or no cores.
    if (os.cpu_count() or 1) >= 2:
        best = max(m["speedup"]
                   for m in payload["sharded"]["measurements"]
                   if m["shards"] > 1)
        assert best >= 1.1, \
            "multi-shard dispatch should beat serial on >= 2 cores"
